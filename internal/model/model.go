// Package model implements the AutoClass class-model terms: the
// per-(class, attribute-block) probability distributions whose parameters
// the base_cycle re-estimates. Two terms mirror AutoClass C's standard
// models — single_normal_cn for real attributes and single_multinomial for
// discrete attributes — and multi_normal_cn (a full-covariance Gaussian
// over a block of real attributes) is provided as the correlated-attribute
// extension.
//
// A Term owns three responsibilities, matching the three phases of the
// engine's cycle:
//
//   - LogProb: the term's contribution to log L_ij in update_wts;
//   - AccumulateStats/StatsSize: weighted sufficient statistics gathered in
//     update_parameters (this is exactly the vector P-AutoClass Allreduces
//     across ranks);
//   - Update: the MAP re-estimation from globally reduced statistics.
//
// Missing values follow the missing-at-random convention: they contribute
// zero to log L_ij and are excluded from the statistics. (AutoClass C
// models "unknown" as an explicit extra outcome; the MAR convention keeps
// the likelihood comparable across attributes and is the common modern
// choice. The substitution is documented in DESIGN.md.)
package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Term is one class's model for a block of attributes.
type Term interface {
	// Kind returns the term's kind.
	Kind() TermKind
	// Attrs returns the dataset columns this term covers.
	Attrs() []int
	// LogProb returns the term's log-likelihood contribution for an
	// instance row (full row; the term reads its own columns). Missing
	// values contribute zero.
	LogProb(row []float64) float64
	// StatsSize returns the length of the term's sufficient-statistics
	// vector.
	StatsSize() int
	// AccumulateStats folds the instance row with weight w into stats,
	// which has length StatsSize().
	AccumulateStats(row []float64, w float64, stats []float64)
	// Update re-estimates the parameters from globally reduced statistics.
	Update(stats []float64)
	// LogPrior returns the log prior density of the current parameters.
	LogPrior() float64
	// NumParams returns the number of free parameters, used by the
	// penalized marginal-likelihood approximation.
	NumParams() int
	// Params serializes the current parameters.
	Params() []float64
	// SetParams restores parameters serialized by Params.
	SetParams(p []float64) error
	// Clone returns an independent copy sharing the immutable priors.
	Clone() Term
	// Describe returns a one-line human-readable parameter summary.
	Describe(ds *dataset.Dataset) string
	// KLTo returns the Kullback–Leibler divergence KL(this ‖ other) in
	// nats. Both terms must have the same kind and attribute block; it
	// returns an error otherwise. Used by the report's class-separation
	// diagnostics.
	KLTo(other Term) (float64, error)
	// Kernel returns a new blocked evaluation kernel aliasing this term,
	// already Refreshed against the current parameters.
	Kernel() Kernel
}

// TermKind identifies a term implementation.
type TermKind int

const (
	// SingleNormal models one real attribute as a Gaussian
	// (AutoClass single_normal_cn).
	SingleNormal TermKind = iota
	// SingleMultinomial models one discrete attribute as a categorical
	// distribution (AutoClass single_multinomial).
	SingleMultinomial
	// MultiNormal models a block of real attributes as a full-covariance
	// Gaussian (AutoClass multi_normal_cn).
	MultiNormal
	// LogNormal models one strictly positive real attribute as a
	// log-normal distribution (AutoClass single_normal_ln) — the preferred
	// model for scale-like measurements.
	LogNormal
)

// String implements fmt.Stringer.
func (k TermKind) String() string {
	switch k {
	case SingleNormal:
		return "single_normal_cn"
	case SingleMultinomial:
		return "single_multinomial"
	case MultiNormal:
		return "multi_normal_cn"
	case LogNormal:
		return "single_normal_ln"
	default:
		return fmt.Sprintf("TermKind(%d)", int(k))
	}
}

// BlockSpec assigns a term kind to a block of attribute columns.
type BlockSpec struct {
	Kind  TermKind
	Attrs []int
}

// Spec is a complete class-model specification: a partition of the
// dataset's attributes into term blocks. It corresponds to AutoClass's
// model file (the discrete search dimension T of the paper's §2).
type Spec struct {
	Blocks []BlockSpec
}

// DefaultSpec models every real attribute with SingleNormal and every
// discrete attribute with SingleMultinomial — AutoClass's standard
// independent-attribute model.
func DefaultSpec(ds *dataset.Dataset) Spec {
	var s Spec
	for k := 0; k < ds.NumAttrs(); k++ {
		switch ds.Attr(k).Type {
		case dataset.Real:
			s.Blocks = append(s.Blocks, BlockSpec{Kind: SingleNormal, Attrs: []int{k}})
		case dataset.Discrete:
			s.Blocks = append(s.Blocks, BlockSpec{Kind: SingleMultinomial, Attrs: []int{k}})
		}
	}
	return s
}

// CorrelatedSpec models all real attributes jointly with one MultiNormal
// block (discrete attributes stay SingleMultinomial). It is the
// correlated-attribute model variant.
func CorrelatedSpec(ds *dataset.Dataset) Spec {
	var s Spec
	var reals []int
	for k := 0; k < ds.NumAttrs(); k++ {
		switch ds.Attr(k).Type {
		case dataset.Real:
			reals = append(reals, k)
		case dataset.Discrete:
			s.Blocks = append(s.Blocks, BlockSpec{Kind: SingleMultinomial, Attrs: []int{k}})
		}
	}
	if len(reals) == 1 {
		s.Blocks = append(s.Blocks, BlockSpec{Kind: SingleNormal, Attrs: reals})
	} else if len(reals) > 1 {
		s.Blocks = append(s.Blocks, BlockSpec{Kind: MultiNormal, Attrs: reals})
	}
	return s
}

// Validate checks that the spec partitions the dataset's attributes into
// type-compatible blocks: every column covered exactly once, reals under
// normal terms, discretes under multinomial terms.
func (s Spec) Validate(ds *dataset.Dataset) error {
	if len(s.Blocks) == 0 {
		return errors.New("model: spec has no blocks")
	}
	covered := make([]bool, ds.NumAttrs())
	for bi, b := range s.Blocks {
		if len(b.Attrs) == 0 {
			return fmt.Errorf("model: block %d covers no attributes", bi)
		}
		switch b.Kind {
		case SingleNormal, SingleMultinomial, LogNormal:
			if len(b.Attrs) != 1 {
				return fmt.Errorf("model: block %d: %v takes exactly one attribute", bi, b.Kind)
			}
		case MultiNormal:
			if len(b.Attrs) < 2 {
				return fmt.Errorf("model: block %d: multi_normal_cn needs at least two attributes", bi)
			}
		default:
			return fmt.Errorf("model: block %d: unknown kind %d", bi, int(b.Kind))
		}
		for _, k := range b.Attrs {
			if k < 0 || k >= ds.NumAttrs() {
				return fmt.Errorf("model: block %d references attribute %d of %d", bi, k, ds.NumAttrs())
			}
			if covered[k] {
				return fmt.Errorf("model: attribute %d covered twice", k)
			}
			covered[k] = true
			at := ds.Attr(k).Type
			switch b.Kind {
			case SingleNormal, MultiNormal, LogNormal:
				if at != dataset.Real {
					return fmt.Errorf("model: block %d: %v over non-real attribute %q", bi, b.Kind, ds.Attr(k).Name)
				}
			case SingleMultinomial:
				if at != dataset.Discrete {
					return fmt.Errorf("model: block %d: multinomial over non-discrete attribute %q", bi, ds.Attr(k).Name)
				}
			}
		}
	}
	for k, ok := range covered {
		if !ok {
			return fmt.Errorf("model: attribute %d (%q) not covered by any block", k, ds.Attr(k).Name)
		}
	}
	return nil
}

// Priors holds the data-derived prior hyperparameters for every attribute,
// built once per dataset from its global Summary. AutoClass's priors are
// data-dependent in the same way: class means are pulled toward the global
// mean and class sigmas are floored relative to the global spread.
type Priors struct {
	// N is the dataset size (used by the penalized marginal score).
	N int
	// Mean and Sigma are the global moments of each real attribute.
	Mean, Sigma []float64
	// SigmaFloor is the minimum class sigma for each real attribute,
	// preventing variance collapse onto single points.
	SigmaFloor []float64
	// Kappa is the prior pseudo-count pulling class statistics toward the
	// global values.
	Kappa float64
	// DirichletAlpha is the symmetric Dirichlet concentration for
	// multinomial terms and class weights.
	DirichletAlpha float64
	// GlobalFreq[k] holds the smoothed global level frequencies of
	// discrete attribute k (nil for real attributes); used by the report's
	// influence values.
	GlobalFreq [][]float64
	// LogMean, LogSigma and LogSigmaFloor are the log-domain analogues of
	// Mean/Sigma/SigmaFloor, computed over the positive values of each
	// real attribute. They drive the log-normal model term.
	LogMean, LogSigma, LogSigmaFloor []float64
	// NonPositive[k] counts known values of real attribute k outside a
	// log-normal model's support; LogNormal specs reject attributes where
	// it is non-zero.
	NonPositive []int
}

// DefaultKappa and DefaultAlpha are the engine-wide prior strengths.
const (
	DefaultKappa = 1.0
	DefaultAlpha = 1.0
	// sigmaFloorFraction floors class sigma at this fraction of the
	// attribute's global sigma (AutoClass uses a comparable floor derived
	// from the measurement precision).
	sigmaFloorFraction = 1e-2
)

// NewPriors derives priors from a dataset summary.
func NewPriors(ds *dataset.Dataset, sum *dataset.Summary) *Priors {
	p := &Priors{
		N:              sum.N,
		Mean:           make([]float64, ds.NumAttrs()),
		Sigma:          make([]float64, ds.NumAttrs()),
		SigmaFloor:     make([]float64, ds.NumAttrs()),
		Kappa:          DefaultKappa,
		DirichletAlpha: DefaultAlpha,
		GlobalFreq:     make([][]float64, ds.NumAttrs()),
		LogMean:        make([]float64, ds.NumAttrs()),
		LogSigma:       make([]float64, ds.NumAttrs()),
		LogSigmaFloor:  make([]float64, ds.NumAttrs()),
		NonPositive:    make([]int, ds.NumAttrs()),
	}
	for k := 0; k < ds.NumAttrs(); k++ {
		if ds.Attr(k).Type == dataset.Discrete {
			counts := sum.Counts[k]
			total := float64(len(counts)) * DefaultAlpha
			for _, c := range counts {
				total += float64(c)
			}
			freq := make([]float64, len(counts))
			for v, c := range counts {
				freq[v] = (DefaultAlpha + float64(c)) / total
			}
			p.GlobalFreq[k] = freq
			continue
		}
		if ds.Attr(k).Type != dataset.Real {
			continue
		}
		p.Mean[k] = sum.Real[k].Mean()
		sigma := sum.Real[k].StdDev()
		if sigma <= 0 {
			// Constant or empty column: fall back to a unit scale so the
			// model stays proper.
			sigma = 1
		}
		p.Sigma[k] = sigma
		p.SigmaFloor[k] = sigma * sigmaFloorFraction
		if len(sum.LogReal) > k {
			p.LogMean[k] = sum.LogReal[k].Mean()
			lsigma := sum.LogReal[k].StdDev()
			if lsigma <= 0 {
				lsigma = 1
			}
			p.LogSigma[k] = lsigma
			p.LogSigmaFloor[k] = lsigma * sigmaFloorFraction
		}
		if len(sum.NonPositive) > k {
			p.NonPositive[k] = sum.NonPositive[k]
		}
	}
	return p
}

// NewTerm constructs the initial term for one block. Parameters start at
// the prior (global) values; the first update_parameters pass immediately
// re-estimates them from the initial random weights.
func NewTerm(b BlockSpec, ds *dataset.Dataset, pr *Priors) (Term, error) {
	switch b.Kind {
	case SingleNormal:
		return newNormalTerm(b.Attrs[0], pr), nil
	case SingleMultinomial:
		return newMultinomialTerm(b.Attrs[0], ds.Attr(b.Attrs[0]).Cardinality(), pr), nil
	case MultiNormal:
		return newMultiNormalTerm(b.Attrs, pr), nil
	case LogNormal:
		if pr.NonPositive != nil && pr.NonPositive[b.Attrs[0]] > 0 {
			return nil, fmt.Errorf("model: attribute %q has %d non-positive values, outside single_normal_ln support",
				ds.Attr(b.Attrs[0]).Name, pr.NonPositive[b.Attrs[0]])
		}
		return newLogNormalTerm(b.Attrs[0], pr), nil
	default:
		return nil, fmt.Errorf("model: unknown term kind %d", int(b.Kind))
	}
}

// LogNormalSpec models every real attribute with the log-normal term and
// every discrete attribute with SingleMultinomial. Use it for datasets of
// strictly positive scale measurements; NewTerm rejects attributes with
// non-positive values.
func LogNormalSpec(ds *dataset.Dataset) Spec {
	var s Spec
	for k := 0; k < ds.NumAttrs(); k++ {
		switch ds.Attr(k).Type {
		case dataset.Real:
			s.Blocks = append(s.Blocks, BlockSpec{Kind: LogNormal, Attrs: []int{k}})
		case dataset.Discrete:
			s.Blocks = append(s.Blocks, BlockSpec{Kind: SingleMultinomial, Attrs: []int{k}})
		}
	}
	return s
}

// logInvGammaPDF returns the log density of an inverse-gamma(shape=1,
// scale=b) distribution at v — the weak variance prior used by the normal
// terms. pdf(v) = b·v^{-2}·exp(-b/v).
func logInvGammaPDF(v, b float64) float64 {
	if v <= 0 || b <= 0 {
		return math.Inf(-1)
	}
	return math.Log(b) - 2*math.Log(v) - b/v
}

// logSymmetricDirichletPDF returns the log density of a symmetric
// Dirichlet(alpha) at probability vector p.
func logSymmetricDirichletPDF(p []float64, alpha float64) float64 {
	k := float64(len(p))
	// log 1/B(alpha,...,alpha) = lgamma(k*alpha) - k*lgamma(alpha)
	logp := stats.LgammaPlus(k*alpha) - k*stats.LgammaPlus(alpha)
	if alpha != 1 {
		for _, v := range p {
			if v <= 0 {
				return math.Inf(-1)
			}
			logp += (alpha - 1) * math.Log(v)
		}
	}
	return logp
}
