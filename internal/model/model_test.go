package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/stats"
)

// mixedDS builds a small dataset with two reals and one discrete.
func mixedDS(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds := dataset.MustNew("m", []dataset.Attribute{
		{Name: "x", Type: dataset.Real},
		{Name: "y", Type: dataset.Real},
		{Name: "c", Type: dataset.Discrete, Levels: []string{"a", "b", "c"}},
	})
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		ds.AppendRow([]float64{r.NormMS(2, 1), r.NormMS(-1, 3), float64(r.Intn(3))})
	}
	return ds
}

func priorsFor(t *testing.T, ds *dataset.Dataset) *Priors {
	t.Helper()
	return NewPriors(ds, ds.Summarize())
}

func TestDefaultSpecCoversAllAttrs(t *testing.T) {
	ds := mixedDS(t)
	spec := DefaultSpec(ds)
	if err := spec.Validate(ds); err != nil {
		t.Fatal(err)
	}
	if len(spec.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(spec.Blocks))
	}
	if spec.Blocks[2].Kind != SingleMultinomial {
		t.Fatalf("discrete attr got %v", spec.Blocks[2].Kind)
	}
}

func TestCorrelatedSpec(t *testing.T) {
	ds := mixedDS(t)
	spec := CorrelatedSpec(ds)
	if err := spec.Validate(ds); err != nil {
		t.Fatal(err)
	}
	foundMVN := false
	for _, b := range spec.Blocks {
		if b.Kind == MultiNormal {
			foundMVN = true
			if len(b.Attrs) != 2 {
				t.Fatalf("MVN block covers %v", b.Attrs)
			}
		}
	}
	if !foundMVN {
		t.Fatal("no multi-normal block for two reals")
	}
	// Single real attribute degrades to SingleNormal.
	one := dataset.MustNew("one", []dataset.Attribute{{Name: "x", Type: dataset.Real}})
	spec1 := CorrelatedSpec(one)
	if len(spec1.Blocks) != 1 || spec1.Blocks[0].Kind != SingleNormal {
		t.Fatalf("single real: %+v", spec1)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	ds := mixedDS(t)
	cases := map[string]Spec{
		"empty":         {},
		"empty-block":   {Blocks: []BlockSpec{{Kind: SingleNormal}}},
		"two-attrs":     {Blocks: []BlockSpec{{Kind: SingleNormal, Attrs: []int{0, 1}}, {Kind: SingleMultinomial, Attrs: []int{2}}}},
		"mvn-one":       {Blocks: []BlockSpec{{Kind: MultiNormal, Attrs: []int{0}}, {Kind: SingleNormal, Attrs: []int{1}}, {Kind: SingleMultinomial, Attrs: []int{2}}}},
		"out-of-range":  {Blocks: []BlockSpec{{Kind: SingleNormal, Attrs: []int{9}}}},
		"double-cover":  {Blocks: []BlockSpec{{Kind: SingleNormal, Attrs: []int{0}}, {Kind: SingleNormal, Attrs: []int{0}}, {Kind: SingleNormal, Attrs: []int{1}}, {Kind: SingleMultinomial, Attrs: []int{2}}}},
		"normal-on-dsc": {Blocks: []BlockSpec{{Kind: SingleNormal, Attrs: []int{0}}, {Kind: SingleNormal, Attrs: []int{1}}, {Kind: SingleNormal, Attrs: []int{2}}}},
		"multi-on-real": {Blocks: []BlockSpec{{Kind: SingleMultinomial, Attrs: []int{0}}, {Kind: SingleNormal, Attrs: []int{1}}, {Kind: SingleMultinomial, Attrs: []int{2}}}},
		"uncovered":     {Blocks: []BlockSpec{{Kind: SingleNormal, Attrs: []int{0}}}},
		"bad-kind":      {Blocks: []BlockSpec{{Kind: TermKind(9), Attrs: []int{0}}}},
	}
	for name, spec := range cases {
		if err := spec.Validate(ds); err == nil {
			t.Errorf("spec %q accepted", name)
		}
	}
}

func TestPriorsFromSummary(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	if pr.N != ds.N() {
		t.Fatalf("N=%d", pr.N)
	}
	if math.Abs(pr.Mean[0]-2) > 0.3 {
		t.Fatalf("global mean %v", pr.Mean[0])
	}
	if pr.Sigma[1] < 2 || pr.Sigma[1] > 4 {
		t.Fatalf("global sigma %v", pr.Sigma[1])
	}
	if pr.SigmaFloor[0] <= 0 || pr.SigmaFloor[0] >= pr.Sigma[0] {
		t.Fatalf("sigma floor %v", pr.SigmaFloor[0])
	}
}

func TestPriorsConstantColumn(t *testing.T) {
	ds := dataset.MustNew("const", []dataset.Attribute{{Name: "x", Type: dataset.Real}})
	for i := 0; i < 10; i++ {
		ds.AppendRow([]float64{5})
	}
	pr := priorsFor(t, ds)
	if pr.Sigma[0] != 1 {
		t.Fatalf("constant column sigma fallback = %v, want 1", pr.Sigma[0])
	}
}

func TestNormalTermUpdateRecoversMoments(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	term, err := NewTerm(BlockSpec{Kind: SingleNormal, Attrs: []int{0}}, ds, pr)
	if err != nil {
		t.Fatal(err)
	}
	// Feed data from N(10, 2) with weight 1; with enough data the prior
	// pull is negligible.
	r := rng.New(3)
	st := make([]float64, term.StatsSize())
	row := make([]float64, 3)
	var ref stats.Moments
	for i := 0; i < 20000; i++ {
		row[0] = r.NormMS(10, 2)
		term.AccumulateStats(row, 1, st)
		ref.AddUnweighted(row[0])
	}
	term.Update(st)
	nt := term.(*normalTerm)
	if math.Abs(nt.Mean()-ref.Mean()) > 0.01 {
		t.Fatalf("mean %v, want %v", nt.Mean(), ref.Mean())
	}
	if math.Abs(nt.Sigma()-ref.StdDev()) > 0.02 {
		t.Fatalf("sigma %v, want %v", nt.Sigma(), ref.StdDev())
	}
}

func TestNormalTermPriorPullsSmallClasses(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	term, _ := NewTerm(BlockSpec{Kind: SingleNormal, Attrs: []int{0}}, ds, pr)
	st := make([]float64, term.StatsSize())
	// One observation at 100 with weight 1; kappa=1 pulls halfway to the
	// global mean.
	term.AccumulateStats([]float64{100, 0, 0}, 1, st)
	term.Update(st)
	nt := term.(*normalTerm)
	want := (pr.Kappa*pr.Mean[0] + 100) / (pr.Kappa + 1)
	if math.Abs(nt.Mean()-want) > 1e-9 {
		t.Fatalf("MAP mean %v, want %v", nt.Mean(), want)
	}
}

func TestNormalTermSigmaFloor(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	pr.Kappa = 1e-12 // effectively no prior, to force collapse
	term := newNormalTerm(0, pr)
	st := make([]float64, 3)
	// Many identical points: raw sigma would be 0.
	for i := 0; i < 100; i++ {
		term.AccumulateStats([]float64{5, 0, 0}, 1, st)
	}
	term.Update(st)
	if term.Sigma() < pr.SigmaFloor[0] {
		t.Fatalf("sigma %v below floor %v", term.Sigma(), pr.SigmaFloor[0])
	}
}

func TestNormalTermMissingHandling(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	term := newNormalTerm(0, pr)
	row := []float64{dataset.Missing, 0, 0}
	if lp := term.LogProb(row); lp != 0 {
		t.Fatalf("missing logprob %v, want 0", lp)
	}
	st := make([]float64, 3)
	term.AccumulateStats(row, 1, st)
	for _, v := range st {
		if v != 0 {
			t.Fatalf("missing value contributed stats %v", st)
		}
	}
}

func TestNormalTermLogProbMatchesPDF(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	term := newNormalTerm(0, pr)
	if err := term.SetParams([]float64{1.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	row := []float64{2.0, 0, 0}
	want := stats.LogNormalPDF(2.0, 1.5, 0.5)
	if got := term.LogProb(row); !stats.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("logprob %v, want %v", got, want)
	}
}

func TestNormalTermParamsRoundTrip(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	term := newNormalTerm(0, pr)
	if err := term.SetParams([]float64{3, 0.25}); err != nil {
		t.Fatal(err)
	}
	clone := term.Clone()
	p := clone.Params()
	if p[0] != 3 || p[1] != 0.25 {
		t.Fatalf("params %v", p)
	}
	if err := term.SetParams([]float64{1}); err == nil {
		t.Fatal("short params accepted")
	}
	if err := term.SetParams([]float64{1, -1}); err == nil {
		t.Fatal("negative sigma accepted")
	}
	// Clone is independent.
	clone.SetParams([]float64{9, 9})
	if term.Params()[0] == 9 {
		t.Fatal("clone shares state")
	}
}

func TestMultinomialTermUpdate(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	term, err := NewTerm(BlockSpec{Kind: SingleMultinomial, Attrs: []int{2}}, ds, pr)
	if err != nil {
		t.Fatal(err)
	}
	st := make([]float64, term.StatsSize())
	// Weighted counts 10, 30, 60.
	counts := []float64{10, 30, 60}
	row := make([]float64, 3)
	for v, c := range counts {
		row[2] = float64(v)
		term.AccumulateStats(row, c, st)
	}
	term.Update(st)
	mt := term.(*multinomialTerm)
	// MAP with alpha=1: (1+10)/(3+100) etc.
	wants := []float64{11.0 / 103, 31.0 / 103, 61.0 / 103}
	for v, want := range wants {
		if !stats.AlmostEqual(mt.Probs()[v], want, 1e-12) {
			t.Fatalf("prob[%d] = %v, want %v", v, mt.Probs()[v], want)
		}
	}
	// Probabilities sum to 1.
	if s := stats.Sum(mt.Probs()); !stats.AlmostEqual(s, 1, 1e-12) {
		t.Fatalf("probs sum %v", s)
	}
}

func TestMultinomialLogProbAndMissing(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	term := newMultinomialTerm(2, 3, pr)
	if err := term.SetParams([]float64{0.2, 0.3, 0.5}); err != nil {
		t.Fatal(err)
	}
	row := []float64{0, 0, 1}
	if got := term.LogProb(row); !stats.AlmostEqual(got, math.Log(0.3), 1e-12) {
		t.Fatalf("logprob %v", got)
	}
	row[2] = dataset.Missing
	if got := term.LogProb(row); got != 0 {
		t.Fatalf("missing logprob %v", got)
	}
	st := make([]float64, 3)
	term.AccumulateStats(row, 1, st)
	if st[0]+st[1]+st[2] != 0 {
		t.Fatal("missing value counted")
	}
}

func TestMultinomialSetParamsValidation(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	term := newMultinomialTerm(2, 3, pr)
	if err := term.SetParams([]float64{0.5, 0.5}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := term.SetParams([]float64{0.5, 0.5, 0.5}); err == nil {
		t.Fatal("non-normalized accepted")
	}
	if err := term.SetParams([]float64{1, 0, 0}); err == nil {
		t.Fatal("zero probability accepted")
	}
}

func TestTermNumParams(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	if n := newNormalTerm(0, pr).NumParams(); n != 2 {
		t.Fatalf("normal NumParams %d", n)
	}
	if n := newMultinomialTerm(2, 3, pr).NumParams(); n != 2 {
		t.Fatalf("multinomial NumParams %d", n)
	}
	if n := newMultiNormalTerm([]int{0, 1}, pr).NumParams(); n != 5 {
		t.Fatalf("multi-normal NumParams %d", n)
	}
}

func TestLogPriorFinite(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	spec := DefaultSpec(ds)
	for _, b := range spec.Blocks {
		term, err := NewTerm(b, ds, pr)
		if err != nil {
			t.Fatal(err)
		}
		if lp := term.LogPrior(); math.IsNaN(lp) || math.IsInf(lp, 0) {
			t.Fatalf("block %v log prior %v", b.Kind, lp)
		}
	}
	mvn := newMultiNormalTerm([]int{0, 1}, pr)
	if lp := mvn.LogPrior(); math.IsNaN(lp) || math.IsInf(lp, 0) {
		t.Fatalf("mvn log prior %v", lp)
	}
}

// Property: after any Update from random non-degenerate statistics, the
// normal term's sigma respects the floor and logprob is finite.
func TestQuickNormalUpdateStable(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	f := func(seed uint64, n8 uint8) bool {
		r := rng.New(seed)
		term := newNormalTerm(0, pr)
		st := make([]float64, 3)
		n := int(n8%50) + 1
		row := make([]float64, 3)
		for i := 0; i < n; i++ {
			row[0] = r.NormMS(0, 50)
			term.AccumulateStats(row, r.Float64()+0.01, st)
		}
		term.Update(st)
		if term.Sigma() < pr.SigmaFloor[0] {
			return false
		}
		row[0] = r.NormMS(0, 50)
		lp := term.LogProb(row)
		return !math.IsNaN(lp) && !math.IsInf(lp, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTermUnknownKind(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	if _, err := NewTerm(BlockSpec{Kind: TermKind(42), Attrs: []int{0}}, ds, pr); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDescribeMentionsAttrName(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	spec := DefaultSpec(ds)
	for _, b := range spec.Blocks {
		term, _ := NewTerm(b, ds, pr)
		desc := term.Describe(ds)
		if desc == "" {
			t.Fatalf("empty description for %v", b.Kind)
		}
	}
}

func TestKLToNormalClosedForm(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	a := newNormalTerm(0, pr)
	b := newNormalTerm(0, pr)
	a.SetParams([]float64{0, 1})
	b.SetParams([]float64{0, 1})
	if kl, err := a.KLTo(b); err != nil || kl != 0 {
		t.Fatalf("KL of identical normals %v, %v", kl, err)
	}
	b.SetParams([]float64{3, 1})
	kl, err := a.KLTo(b)
	if err != nil {
		t.Fatal(err)
	}
	// KL(N(0,1)||N(3,1)) = 9/2.
	if !stats.AlmostEqual(kl, 4.5, 1e-12) {
		t.Fatalf("KL = %v, want 4.5", kl)
	}
	// Asymmetry with different sigmas.
	b.SetParams([]float64{0, 2})
	ab, _ := a.KLTo(b)
	ba, _ := b.KLTo(a)
	if ab == ba {
		t.Fatal("KL should be asymmetric for different sigmas")
	}
	// Incompatible terms rejected.
	other := newNormalTerm(1, pr)
	if _, err := a.KLTo(other); err == nil {
		t.Fatal("KL across attributes accepted")
	}
	mn := newMultinomialTerm(2, 3, pr)
	if _, err := a.KLTo(mn); err == nil {
		t.Fatal("KL across kinds accepted")
	}
}

func TestKLToMultinomial(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	a := newMultinomialTerm(2, 3, pr)
	b := newMultinomialTerm(2, 3, pr)
	a.SetParams([]float64{0.5, 0.3, 0.2})
	b.SetParams([]float64{0.5, 0.3, 0.2})
	if kl, _ := a.KLTo(b); kl != 0 {
		t.Fatalf("identical multinomials KL %v", kl)
	}
	b.SetParams([]float64{0.2, 0.3, 0.5})
	kl, err := a.KLTo(b)
	if err != nil || kl <= 0 {
		t.Fatalf("KL %v, %v", kl, err)
	}
	want := 0.5*math.Log(0.5/0.2) + 0.3*math.Log(0.3/0.3) + 0.2*math.Log(0.2/0.5)
	if !stats.AlmostEqual(kl, want, 1e-12) {
		t.Fatalf("KL %v, want %v", kl, want)
	}
}

func TestKLToMultiNormal(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	a := newMultiNormalTerm([]int{0, 1}, pr)
	b := newMultiNormalTerm([]int{0, 1}, pr)
	a.SetParams([]float64{0, 0, 1, 0, 0, 1})
	b.SetParams([]float64{0, 0, 1, 0, 0, 1})
	if kl, err := a.KLTo(b); err != nil || !stats.AlmostEqual(kl, 0, 1e-12) {
		t.Fatalf("identical MVN KL %v, %v", kl, err)
	}
	// Diagonal covariances: KL decomposes into per-dimension normal KLs.
	a.SetParams([]float64{0, 0, 1, 0, 0, 4})
	b.SetParams([]float64{2, 1, 1, 0, 0, 1})
	kl, err := a.KLTo(b)
	if err != nil {
		t.Fatal(err)
	}
	n1 := newNormalTerm(0, pr)
	n2 := newNormalTerm(1, pr)
	n1b := newNormalTerm(0, pr)
	n2b := newNormalTerm(1, pr)
	n1.SetParams([]float64{0, 1})
	n1b.SetParams([]float64{2, 1})
	n2.SetParams([]float64{0, 2})
	n2b.SetParams([]float64{1, 1})
	k1, _ := n1.KLTo(n1b)
	k2, _ := n2.KLTo(n2b)
	if !stats.AlmostEqual(kl, k1+k2, 1e-10) {
		t.Fatalf("MVN KL %v, want %v", kl, k1+k2)
	}
}

func TestKLToLogNormal(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	a := newLogNormalTerm(0, pr)
	b := newLogNormalTerm(0, pr)
	a.SetParams([]float64{1, 0.5})
	b.SetParams([]float64{1, 0.5})
	if kl, err := a.KLTo(b); err != nil || kl != 0 {
		t.Fatalf("identical log-normals KL %v, %v", kl, err)
	}
	b.SetParams([]float64{2, 0.5})
	if kl, _ := a.KLTo(b); kl <= 0 {
		t.Fatalf("shifted log-normal KL %v", kl)
	}
	n := newNormalTerm(0, pr)
	if _, err := a.KLTo(n); err == nil {
		t.Fatal("KL across kinds accepted")
	}
}

// Property: Params/SetParams round-trips exactly for every term kind, and
// LogProb stays finite at arbitrary in-support points afterwards.
func TestQuickParamsRoundTripAllKinds(t *testing.T) {
	ds := mixedDS(t)
	pr := priorsFor(t, ds)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		terms := []Term{
			newNormalTerm(0, pr),
			newMultinomialTerm(2, 3, pr),
			newMultiNormalTerm([]int{0, 1}, pr),
			newLogNormalTerm(0, pr),
		}
		row := []float64{r.NormMS(0, 5), r.NormMS(0, 5), float64(r.Intn(3))}
		lnRow := []float64{r.Float64()*100 + 0.01, 0, 0}
		for ti, term := range terms {
			// Perturb with a valid random parameter vector.
			switch ti {
			case 0:
				term.SetParams([]float64{r.NormMS(0, 10), r.Float64() + 0.05})
			case 1:
				probs := make([]float64, 3)
				r.Dirichlet([]float64{1, 1, 1}, probs)
				for _, p := range probs {
					if p <= 0 {
						return true // rare degenerate draw; skip
					}
				}
				term.SetParams(probs)
			case 2:
				a := r.Float64() + 0.5
				b := r.Float64() + 0.5
				cxy := (r.Float64() - 0.5) * math.Sqrt(a*b)
				term.SetParams([]float64{r.NormMS(0, 3), r.NormMS(0, 3), a, cxy, cxy, b})
			case 3:
				term.SetParams([]float64{r.NormMS(0, 2), r.Float64() + 0.05})
			}
			saved := term.Params()
			clone := term.Clone()
			if err := clone.SetParams(saved); err != nil {
				return false
			}
			back := clone.Params()
			for i := range saved {
				if math.Abs(back[i]-saved[i]) > 1e-9*(1+math.Abs(saved[i])) {
					return false
				}
			}
			probe := row
			if ti == 3 {
				probe = lnRow
			}
			if lp := term.LogProb(probe); math.IsNaN(lp) || math.IsInf(lp, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
