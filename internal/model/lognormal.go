package model

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// logNormalTerm is AutoClass's single_normal_ln: one strictly positive real
// attribute whose logarithm is modeled as a Gaussian. It is the standard
// model for scale-like measurements (durations, intensities, sizes) whose
// spread grows with their magnitude.
//
// The term is the normalTerm MAP machinery applied in the log domain, with
// the change-of-variable Jacobian in the likelihood:
//
//	log p(x) = log N(log x | μ, σ) − log x
//
// Sufficient statistics (3 values): [Σ w·log x, Σ w·(log x)², Σ w].
// Values x <= 0 are outside the support; the engine treats them like
// missing values (NewTerm refuses the spec outright when the dataset's
// summary shows any).
type logNormalTerm struct {
	attr  int
	pr    *Priors
	mean  float64 // mean of log x
	sigma float64 // sigma of log x
}

func newLogNormalTerm(attr int, pr *Priors) *logNormalTerm {
	return &logNormalTerm{
		attr:  attr,
		pr:    pr,
		mean:  pr.LogMean[attr],
		sigma: pr.LogSigma[attr],
	}
}

func (t *logNormalTerm) Kind() TermKind { return LogNormal }
func (t *logNormalTerm) Attrs() []int   { return []int{t.attr} }

// LogMeanParam returns the current class mean of log(x).
func (t *logNormalTerm) LogMeanParam() float64 { return t.mean }

// LogSigmaParam returns the current class sigma of log(x).
func (t *logNormalTerm) LogSigmaParam() float64 { return t.sigma }

func (t *logNormalTerm) LogProb(row []float64) float64 {
	x := row[t.attr]
	if dataset.IsMissing(x) || x <= 0 {
		return 0
	}
	lx := math.Log(x)
	return stats.LogNormalPDF(lx, t.mean, t.sigma) - lx
}

func (t *logNormalTerm) StatsSize() int { return 3 }

func (t *logNormalTerm) AccumulateStats(row []float64, w float64, st []float64) {
	x := row[t.attr]
	if dataset.IsMissing(x) || x <= 0 {
		return
	}
	lx := math.Log(x)
	st[0] += w * lx
	st[1] += w * lx * lx
	st[2] += w
}

func (t *logNormalTerm) Update(st []float64) {
	sumWX, sumWX2, w := st[0], st[1], st[2]
	kappa := t.pr.Kappa
	mu0 := t.pr.LogMean[t.attr]
	sigma0 := t.pr.LogSigma[t.attr]
	mean := (kappa*mu0 + sumWX) / (kappa + w)
	ss := sumWX2 - 2*mean*sumWX + mean*mean*w
	if ss < 0 {
		ss = 0
	}
	dm := mean - mu0
	variance := (kappa*sigma0*sigma0 + kappa*dm*dm + ss) / (kappa + w)
	sigma := math.Sqrt(variance)
	if floor := t.pr.LogSigmaFloor[t.attr]; sigma < floor {
		sigma = floor
	}
	t.mean, t.sigma = mean, sigma
}

func (t *logNormalTerm) LogPrior() float64 {
	mu0 := t.pr.LogMean[t.attr]
	sigma0 := t.pr.LogSigma[t.attr]
	return stats.LogNormalPDF(t.mean, mu0, sigma0) +
		logInvGammaPDF(t.sigma*t.sigma, sigma0*sigma0)
}

func (t *logNormalTerm) NumParams() int { return 2 }

func (t *logNormalTerm) Params() []float64 { return []float64{t.mean, t.sigma} }

func (t *logNormalTerm) SetParams(p []float64) error {
	if len(p) != 2 {
		return fmt.Errorf("model: log-normal term needs 2 params, got %d", len(p))
	}
	if p[1] <= 0 || math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		return fmt.Errorf("model: invalid log-normal params %v", p)
	}
	t.mean, t.sigma = p[0], p[1]
	return nil
}

func (t *logNormalTerm) Clone() Term {
	c := *t
	return &c
}

func (t *logNormalTerm) Describe(ds *dataset.Dataset) string {
	// Report the median and multiplicative spread, the natural log-normal
	// summary.
	return fmt.Sprintf("%s ~ LogNormal(median=%.4g, spread=x%.3g)",
		ds.Attr(t.attr).Name, math.Exp(t.mean), math.Exp(t.sigma))
}

// logNormalKernel is the blocked path of logNormalTerm: the normal kernel
// applied to log x, plus the change-of-variable Jacobian −log x. One
// math.Log per case remains (the reference pays the same); the per-cycle
// invariants log σ and ½log 2π are hoisted out. The single guard x > 0 also
// rejects NaN (missing), since NaN > 0 is false.
type logNormalKernel struct {
	t    *logNormalTerm
	mean float64
	c    float64
	inv2 float64
}

func (t *logNormalTerm) Kernel() Kernel {
	k := &logNormalKernel{t: t}
	k.Refresh()
	return k
}

func (k *logNormalKernel) Refresh() {
	k.mean = k.t.mean
	k.c = -math.Log(k.t.sigma) - stats.HalfLog2Pi
	k.inv2 = 1 / (2 * k.t.sigma * k.t.sigma)
}

func (k *logNormalKernel) BlockLogProb(cols *dataset.Columns, lo, hi int, out []float64) {
	col := cols.Col(k.t.attr)[lo:hi]
	mean, c, inv2 := k.mean, k.c, k.inv2
	for i, x := range col {
		if x > 0 {
			lx := math.Log(x)
			d := lx - mean
			out[i] += c - d*d*inv2 - lx
		}
	}
}

func (k *logNormalKernel) BlockAccumulateStats(cols *dataset.Columns, wts []float64, lo, hi int, st []float64) {
	col := cols.Col(k.t.attr)[lo:hi]
	var sx, sxx, sw float64
	for i, x := range col {
		if x > 0 {
			w := wts[i]
			lx := math.Log(x)
			wx := w * lx
			sx += wx
			sxx += wx * lx
			sw += w
		}
	}
	st[0] += sx
	st[1] += sxx
	st[2] += sw
}

// KLTo implements Term. KL is invariant under the shared log
// transformation, so the divergence equals that of the underlying normals
// over log x.
func (t *logNormalTerm) KLTo(other Term) (float64, error) {
	o, ok := other.(*logNormalTerm)
	if !ok || o.attr != t.attr {
		return 0, fmt.Errorf("model: KL between incompatible terms")
	}
	r := t.sigma / o.sigma
	dm := t.mean - o.mean
	return math.Log(1/r) + (r*r+dm*dm/(o.sigma*o.sigma))/2 - 0.5, nil
}
