package model

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// multiNormalTerm is AutoClass's multi_normal_cn: a block of D real
// attributes modeled as a joint Gaussian with full covariance, capturing
// correlated attributes (the "whether attributes are correlated" dimension
// of the paper's model space T).
//
// Sufficient statistics (1 + D + D(D+1)/2 values):
//
//	[Σw, Σw·x_a for each a, Σw·x_a·x_b for each a ≤ b]
//
// MAP update with pseudo-count κ, prior mean μ₀ and prior covariance
// diag(σ₀²):
//
//	μ  = (κ·μ₀ + Σwx) / (κ + W)
//	Σ  = (κ·diag(σ₀²) + κ·(μ−μ₀)(μ−μ₀)ᵀ + S) / (κ + W)
//
// with S the weighted scatter about μ, floored on the diagonal.
//
// Missing values: an instance with every block value known uses the
// precomputed Cholesky fast path; an instance with a partially known block
// is scored under the exact Gaussian marginal of its known columns (the
// marginal of a Gaussian is the sub-mean/sub-covariance Gaussian), and
// contributes statistics only for its known entries.
type multiNormalTerm struct {
	attrs []int
	pr    *Priors
	d     int
	mean  []float64
	cov   []float64 // d×d row-major, symmetric
	chol  []float64 // lower Cholesky factor of cov
	ldet  float64   // log det(cov)
}

func newMultiNormalTerm(attrs []int, pr *Priors) *multiNormalTerm {
	d := len(attrs)
	t := &multiNormalTerm{
		attrs: append([]int(nil), attrs...),
		pr:    pr,
		d:     d,
		mean:  make([]float64, d),
		cov:   make([]float64, d*d),
	}
	for i, k := range attrs {
		t.mean[i] = pr.Mean[k]
		t.cov[i*d+i] = pr.Sigma[k] * pr.Sigma[k]
	}
	t.refactor()
	return t
}

func (t *multiNormalTerm) Kind() TermKind { return MultiNormal }
func (t *multiNormalTerm) Attrs() []int   { return t.attrs }

// Mean returns the current class mean vector (read-only).
func (t *multiNormalTerm) Mean() []float64 { return t.mean }

// Cov returns the current covariance matrix, row-major d×d (read-only).
func (t *multiNormalTerm) Cov() []float64 { return t.cov }

// refactor recomputes the Cholesky factor and log-determinant, adding
// diagonal jitter if the matrix is not numerically positive definite.
func (t *multiNormalTerm) refactor() {
	d := t.d
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		m := append([]float64(nil), t.cov...)
		if jitter > 0 {
			for i := 0; i < d; i++ {
				m[i*d+i] += jitter
			}
		}
		chol, ok := cholesky(m, d)
		if ok {
			if jitter > 0 {
				copy(t.cov, m)
			}
			t.chol = chol
			t.ldet = 0
			for i := 0; i < d; i++ {
				t.ldet += 2 * math.Log(chol[i*d+i])
			}
			return
		}
		if jitter == 0 {
			// Scale-aware starting jitter.
			trace := 0.0
			for i := 0; i < d; i++ {
				trace += t.cov[i*d+i]
			}
			jitter = math.Max(trace/float64(d)*1e-8, 1e-12)
		} else {
			jitter *= 10
		}
	}
	// Last resort: fall back to the prior diagonal.
	for i := range t.cov {
		t.cov[i] = 0
	}
	for i, k := range t.attrs {
		t.cov[i*d+i] = t.pr.Sigma[k] * t.pr.Sigma[k]
	}
	chol, _ := cholesky(append([]float64(nil), t.cov...), d)
	t.chol = chol
	t.ldet = 0
	for i := 0; i < d; i++ {
		t.ldet += 2 * math.Log(chol[i*d+i])
	}
}

func (t *multiNormalTerm) LogProb(row []float64) float64 {
	d := t.d
	known := 0
	for _, k := range t.attrs {
		if !dataset.IsMissing(row[k]) {
			known++
		}
	}
	if known == 0 {
		return 0
	}
	if known == d {
		// Fast path: solve L y = (x − μ); logprob = −½‖y‖² − ½ log|Σ| − d/2 log 2π.
		diff := make([]float64, d)
		for i, k := range t.attrs {
			diff[i] = row[k] - t.mean[i]
		}
		y := forwardSolve(t.chol, diff, d)
		q := 0.0
		for _, v := range y {
			q += v * v
		}
		return -0.5*q - 0.5*t.ldet - float64(d)*stats.HalfLog2Pi
	}
	// Marginal over the known columns.
	vals := make([]float64, d)
	for i, k := range t.attrs {
		vals[i] = row[k]
	}
	return t.marginalLogProb(vals)
}

// marginalLogProb scores a partially known block under the exact Gaussian
// marginal of its known columns. vals is in block-local order (vals[i] is
// the value of attrs[i]); NaN entries are missing. Shared by the per-row
// reference path and the blocked kernel; it allocates, which is acceptable
// because partially known blocks are a small minority of cases.
func (t *multiNormalTerm) marginalLogProb(vals []float64) float64 {
	idx := make([]int, 0, t.d)
	for i, v := range vals {
		if !dataset.IsMissing(v) {
			idx = append(idx, i)
		}
	}
	m := len(idx)
	sub := make([]float64, m*m)
	diff := make([]float64, m)
	for a, ia := range idx {
		diff[a] = vals[ia] - t.mean[ia]
		for b, ib := range idx {
			sub[a*m+b] = t.cov[ia*t.d+ib]
		}
	}
	chol, ok := cholesky(sub, m)
	if !ok {
		// Covariance sub-block should inherit positive-definiteness; if
		// rounding broke it, fall back to independent marginals.
		lp := 0.0
		for _, ia := range idx {
			sigma := math.Sqrt(t.cov[ia*t.d+ia])
			lp += stats.LogNormalPDF(vals[ia], t.mean[ia], sigma)
		}
		return lp
	}
	y := forwardSolve(chol, diff, m)
	q, ldet := 0.0, 0.0
	for i := 0; i < m; i++ {
		q += y[i] * y[i]
		ldet += 2 * math.Log(chol[i*m+i])
	}
	return -0.5*q - 0.5*ldet - float64(m)*stats.HalfLog2Pi
}

func (t *multiNormalTerm) StatsSize() int { return 1 + t.d + t.d*(t.d+1)/2 }

func (t *multiNormalTerm) AccumulateStats(row []float64, w float64, st []float64) {
	// Statistics use only fully known blocks; partially known rows would
	// need an E-step imputation to contribute consistently, and typical
	// missingness makes them a small minority.
	d := t.d
	for _, k := range t.attrs {
		if dataset.IsMissing(row[k]) {
			return
		}
	}
	st[0] += w
	pos := 1 + d
	for a := 0; a < d; a++ {
		xa := row[t.attrs[a]]
		st[1+a] += w * xa
		for b := a; b < d; b++ {
			st[pos] += w * xa * row[t.attrs[b]]
			pos++
		}
	}
}

func (t *multiNormalTerm) Update(st []float64) {
	d := t.d
	w := st[0]
	kappa := t.pr.Kappa
	denom := kappa + w
	mean := make([]float64, d)
	for a := 0; a < d; a++ {
		mu0 := t.pr.Mean[t.attrs[a]]
		mean[a] = (kappa*mu0 + st[1+a]) / denom
	}
	// Scatter about the new mean: S_ab = Σw x_a x_b − μ_a Σw x_b − μ_b Σw x_a + W μ_a μ_b.
	cov := make([]float64, d*d)
	pos := 1 + d
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			s := st[pos] - mean[a]*st[1+b] - mean[b]*st[1+a] + w*mean[a]*mean[b]
			pos++
			mu0a := t.pr.Mean[t.attrs[a]]
			mu0b := t.pr.Mean[t.attrs[b]]
			s += kappa * (mean[a] - mu0a) * (mean[b] - mu0b)
			if a == b {
				sigma0 := t.pr.Sigma[t.attrs[a]]
				s += kappa * sigma0 * sigma0
			}
			v := s / denom
			cov[a*d+b] = v
			cov[b*d+a] = v
		}
	}
	// Floor the diagonal.
	for a := 0; a < d; a++ {
		floor := t.pr.SigmaFloor[t.attrs[a]]
		if cov[a*d+a] < floor*floor {
			cov[a*d+a] = floor * floor
		}
	}
	t.mean = mean
	t.cov = cov
	t.refactor()
}

func (t *multiNormalTerm) LogPrior() float64 {
	lp := 0.0
	for a, k := range t.attrs {
		lp += stats.LogNormalPDF(t.mean[a], t.pr.Mean[k], t.pr.Sigma[k])
		lp += logInvGammaPDF(t.cov[a*t.d+a], t.pr.Sigma[k]*t.pr.Sigma[k])
	}
	return lp
}

func (t *multiNormalTerm) NumParams() int { return t.d + t.d*(t.d+1)/2 }

func (t *multiNormalTerm) Params() []float64 {
	out := make([]float64, 0, t.d+t.d*t.d)
	out = append(out, t.mean...)
	out = append(out, t.cov...)
	return out
}

func (t *multiNormalTerm) SetParams(p []float64) error {
	d := t.d
	if len(p) != d+d*d {
		return fmt.Errorf("model: multi-normal term needs %d params, got %d", d+d*d, len(p))
	}
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("model: invalid multi-normal param %v", v)
		}
	}
	copy(t.mean, p[:d])
	copy(t.cov, p[d:])
	// Enforce symmetry from the upper triangle.
	for a := 0; a < d; a++ {
		if t.cov[a*d+a] <= 0 {
			return fmt.Errorf("model: non-positive variance %v", t.cov[a*d+a])
		}
		for b := a + 1; b < d; b++ {
			avg := (t.cov[a*d+b] + t.cov[b*d+a]) / 2
			t.cov[a*d+b] = avg
			t.cov[b*d+a] = avg
		}
	}
	t.refactor()
	return nil
}

func (t *multiNormalTerm) Clone() Term {
	c := &multiNormalTerm{
		attrs: append([]int(nil), t.attrs...),
		pr:    t.pr,
		d:     t.d,
		mean:  append([]float64(nil), t.mean...),
		cov:   append([]float64(nil), t.cov...),
		chol:  append([]float64(nil), t.chol...),
		ldet:  t.ldet,
	}
	return c
}

func (t *multiNormalTerm) Describe(ds *dataset.Dataset) string {
	names := make([]string, t.d)
	means := make([]string, t.d)
	for i, k := range t.attrs {
		names[i] = ds.Attr(k).Name
		means[i] = fmt.Sprintf("%.4g", t.mean[i])
	}
	return fmt.Sprintf("(%s) ~ MVN(mean=[%s], |Sigma|=%.4g)",
		strings.Join(names, ","), strings.Join(means, ","), math.Exp(t.ldet))
}

// cholesky factors the d×d row-major SPD matrix m into its lower Cholesky
// factor L (m = L·Lᵀ), returning ok=false if m is not positive definite.
// m is not modified.
func cholesky(m []float64, d int) ([]float64, bool) {
	l := make([]float64, d*d)
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			sum := m[i*d+j]
			for k := 0; k < j; k++ {
				sum -= l[i*d+k] * l[j*d+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, false
				}
				l[i*d+i] = math.Sqrt(sum)
			} else {
				l[i*d+j] = sum / l[j*d+j]
			}
		}
	}
	return l, true
}

// forwardSolve solves L·y = b for lower-triangular L.
func forwardSolve(l, b []float64, d int) []float64 {
	y := make([]float64, d)
	for i := 0; i < d; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*d+k] * y[k]
		}
		y[i] = sum / l[i*d+i]
	}
	return y
}

// KLTo implements Term: the closed-form multivariate Gaussian divergence
//
//	KL = ½( tr(Σ₂⁻¹Σ₁) + (μ₂−μ₁)ᵀΣ₂⁻¹(μ₂−μ₁) − d + ln(detΣ₂/detΣ₁) )
//
// computed through the other term's Cholesky factor.
func (t *multiNormalTerm) KLTo(other Term) (float64, error) {
	o, ok := other.(*multiNormalTerm)
	if !ok || o.d != t.d {
		return 0, fmt.Errorf("model: KL between incompatible terms")
	}
	for i := range t.attrs {
		if t.attrs[i] != o.attrs[i] {
			return 0, fmt.Errorf("model: KL between different attribute blocks")
		}
	}
	d := t.d
	// tr(Σ₂⁻¹Σ₁): solve L₂ Y = Σ₁ column by column, then L₂ᵀ X = Y; the
	// trace of X is the answer. Equivalently, sum of squares of L₂⁻¹ L₁ if
	// Σ₁ = L₁L₁ᵀ; use the columns-of-Σ₁ route for clarity.
	tr := 0.0
	col := make([]float64, d)
	for j := 0; j < d; j++ {
		for i := 0; i < d; i++ {
			col[i] = t.cov[i*d+j]
		}
		y := forwardSolve(o.chol, col, d)
		x := backwardSolve(o.chol, y, d)
		tr += x[j]
	}
	diff := make([]float64, d)
	for i := 0; i < d; i++ {
		diff[i] = o.mean[i] - t.mean[i]
	}
	y := forwardSolve(o.chol, diff, d)
	quad := 0.0
	for _, v := range y {
		quad += v * v
	}
	kl := 0.5 * (tr + quad - float64(d) + o.ldet - t.ldet)
	if kl < 0 {
		kl = 0
	}
	return kl, nil
}

// multiNormalKernel is the blocked path of multiNormalTerm. Refresh
// precomputes the full-block normalizer c = −½log|Σ| − d/2·log 2π; the
// Cholesky factor itself is the term's (refactor rewrites t.chol, which the
// kernel reads through its term pointer). Fully known rows run through a
// scratch forward-solve with no allocation; partially known rows fall back
// to the shared exact-marginal path.
type multiNormalKernel struct {
	t *multiNormalTerm
	c float64
	// scratch, sized d once at construction
	diff []float64
	y    []float64
	vals []float64
	cref [][]float64 // column slices gathered per block call
}

func (t *multiNormalTerm) Kernel() Kernel {
	k := &multiNormalKernel{
		t:    t,
		diff: make([]float64, t.d),
		y:    make([]float64, t.d),
		vals: make([]float64, t.d),
		cref: make([][]float64, t.d),
	}
	k.Refresh()
	return k
}

func (k *multiNormalKernel) Refresh() {
	k.c = -0.5*k.t.ldet - float64(k.t.d)*stats.HalfLog2Pi
}

// gather fills k.cref with the term's column slices for rows [lo, hi) and
// reports whether any of them can contain a missing value.
func (k *multiNormalKernel) gather(cols *dataset.Columns, lo, hi int) bool {
	anyMissing := false
	for i, a := range k.t.attrs {
		k.cref[i] = cols.Col(a)[lo:hi]
		if cols.HasMissing(a) {
			anyMissing = true
		}
	}
	return anyMissing
}

func (k *multiNormalKernel) BlockLogProb(cols *dataset.Columns, lo, hi int, out []float64) {
	t := k.t
	d := t.d
	anyMissing := k.gather(cols, lo, hi)
	n := hi - lo
	for r := 0; r < n; r++ {
		full := true
		if anyMissing {
			for i := 0; i < d; i++ {
				if v := k.cref[i][r]; v != v {
					full = false
					break
				}
			}
		}
		if full {
			for i := 0; i < d; i++ {
				k.diff[i] = k.cref[i][r] - t.mean[i]
			}
			forwardSolveInto(k.y, t.chol, k.diff, d)
			q := 0.0
			for _, v := range k.y {
				q += v * v
			}
			out[r] += -0.5*q + k.c
			continue
		}
		known := 0
		for i := 0; i < d; i++ {
			k.vals[i] = k.cref[i][r]
			if v := k.vals[i]; v == v {
				known++
			}
		}
		if known == 0 {
			continue
		}
		out[r] += t.marginalLogProb(k.vals)
	}
}

func (k *multiNormalKernel) BlockAccumulateStats(cols *dataset.Columns, wts []float64, lo, hi int, st []float64) {
	t := k.t
	d := t.d
	anyMissing := k.gather(cols, lo, hi)
	n := hi - lo
	for r := 0; r < n; r++ {
		if anyMissing {
			// Like the reference path, statistics use only fully known
			// blocks.
			miss := false
			for i := 0; i < d; i++ {
				if v := k.cref[i][r]; v != v {
					miss = true
					break
				}
			}
			if miss {
				continue
			}
		}
		w := wts[r]
		st[0] += w
		pos := 1 + d
		for a := 0; a < d; a++ {
			xa := k.cref[a][r]
			st[1+a] += w * xa
			for b := a; b < d; b++ {
				st[pos] += w * xa * k.cref[b][r]
				pos++
			}
		}
	}
}

// forwardSolveInto is forwardSolve writing into caller-provided y, for the
// allocation-free kernel path.
func forwardSolveInto(y, l, b []float64, d int) {
	for i := 0; i < d; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*d+k] * y[k]
		}
		y[i] = sum / l[i*d+i]
	}
}

// backwardSolve solves Lᵀ·x = b for lower-triangular L.
func backwardSolve(l, b []float64, d int) []float64 {
	x := make([]float64, d)
	for i := d - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < d; k++ {
			sum -= l[k*d+i] * x[k]
		}
		x[i] = sum / l[i*d+i]
	}
	return x
}
