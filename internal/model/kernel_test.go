package model

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// kernelCaseDS builds one dataset per term kind, deliberately spanning the
// missing-value patterns each kernel special-cases: fully known columns,
// sparse missing entries, and (for the multi-normal) rows with partially
// and fully missing blocks.
func kernelCases(t *testing.T, n int) []struct {
	name string
	ds   *dataset.Dataset
	spec BlockSpec
} {
	t.Helper()
	real1 := dataset.MustNew("real", []dataset.Attribute{{Name: "x", Type: dataset.Real}})
	pos1 := dataset.MustNew("pos", []dataset.Attribute{{Name: "x", Type: dataset.Real}})
	disc1 := dataset.MustNew("disc", []dataset.Attribute{
		{Name: "c", Type: dataset.Discrete, Levels: []string{"a", "b", "c", "d"}},
	})
	real3 := dataset.MustNew("real3", []dataset.Attribute{
		{Name: "x", Type: dataset.Real},
		{Name: "y", Type: dataset.Real},
		{Name: "z", Type: dataset.Real},
	})
	for i := 0; i < n; i++ {
		// Deterministic pseudo-random values; every 7th is missing.
		u := func(salt int) float64 {
			h := uint64(i*2654435761 + salt*40503)
			return float64(h%10007) / 10007.0
		}
		miss := func(salt int) bool { return (i+salt)%7 == 0 }
		xv := 4*u(1) - 2
		if miss(0) {
			xv = dataset.Missing
		}
		if err := real1.AppendRow([]float64{xv}); err != nil {
			t.Fatal(err)
		}
		pv := 0.1 + 50*u(2)
		if miss(1) {
			pv = dataset.Missing
		}
		if err := pos1.AppendRow([]float64{pv}); err != nil {
			t.Fatal(err)
		}
		cv := float64(int(u(3) * 4))
		if miss(2) {
			cv = dataset.Missing
		}
		if err := disc1.AppendRow([]float64{cv}); err != nil {
			t.Fatal(err)
		}
		row := []float64{6 * u(4), 10 * u(5), u(6) - 3}
		// Partial and fully missing blocks both occur.
		for k := range row {
			if (i+k)%5 == 0 {
				row[k] = dataset.Missing
			}
		}
		if err := real3.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return []struct {
		name string
		ds   *dataset.Dataset
		spec BlockSpec
	}{
		{"single_normal", real1, BlockSpec{Kind: SingleNormal, Attrs: []int{0}}},
		{"single_normal_ln", pos1, BlockSpec{Kind: LogNormal, Attrs: []int{0}}},
		{"single_multinomial", disc1, BlockSpec{Kind: SingleMultinomial, Attrs: []int{0}}},
		{"multi_normal", real3, BlockSpec{Kind: MultiNormal, Attrs: []int{0, 1, 2}}},
	}
}

// fitTerm moves a freshly constructed term off its prior parameters by one
// weighted statistics pass over the data, so kernels are compared against
// realistic mid-run parameters rather than the symmetric starting point.
func fitTerm(term Term, ds *dataset.Dataset, phase int) {
	st := make([]float64, term.StatsSize())
	for i := 0; i < ds.N(); i++ {
		w := 0.1 + float64((i*31+phase*17)%100)/100.0
		term.AccumulateStats(ds.Row(i), w, st)
	}
	term.Update(st)
}

// TestKernelMatchesTermLogProb checks BlockLogProb against the per-row
// reference for every term kind, across block boundaries (sub-ranges of
// every alignment) and missing-value patterns, to ≤1e-12 relative — and
// that Refresh picks up parameter updates.
func TestKernelMatchesTermLogProb(t *testing.T) {
	const n = 300
	for _, tc := range kernelCases(t, n) {
		t.Run(tc.name, func(t *testing.T) {
			pr := NewPriors(tc.ds, tc.ds.Summarize())
			term, err := NewTerm(tc.spec, tc.ds, pr)
			if err != nil {
				t.Fatal(err)
			}
			fitTerm(term, tc.ds, 1)
			cols := tc.ds.All().Columns()
			kern := term.Kernel()
			ranges := [][2]int{{0, n}, {0, 1}, {1, n}, {n - 1, n}, {n / 3, 2 * n / 3}, {0, 0}}
			for phase := 1; phase <= 2; phase++ {
				for _, r := range ranges {
					lo, hi := r[0], r[1]
					out := make([]float64, hi-lo)
					for i := range out {
						out[i] = 10.5 // sentinel: kernels must ADD, not assign
					}
					kern.BlockLogProb(cols, lo, hi, out)
					for i := lo; i < hi; i++ {
						want := 10.5 + term.LogProb(tc.ds.Row(i))
						if !stats.AlmostEqual(out[i-lo], want, 1e-12) {
							t.Fatalf("phase %d rows [%d,%d): row %d logprob %v, reference %v",
								phase, lo, hi, i, out[i-lo], want)
						}
					}
				}
				// Second phase: update the parameters and Refresh the SAME
				// kernel object — stale constants would fail the recheck.
				fitTerm(term, tc.ds, 2)
				kern.Refresh()
			}
		})
	}
}

// TestKernelMatchesTermStats checks BlockAccumulateStats against the
// per-row AccumulateStats for every term kind and the same range/missing
// coverage, to ≤1e-12 relative.
func TestKernelMatchesTermStats(t *testing.T) {
	const n = 300
	for _, tc := range kernelCases(t, n) {
		t.Run(tc.name, func(t *testing.T) {
			pr := NewPriors(tc.ds, tc.ds.Summarize())
			term, err := NewTerm(tc.spec, tc.ds, pr)
			if err != nil {
				t.Fatal(err)
			}
			fitTerm(term, tc.ds, 3)
			cols := tc.ds.All().Columns()
			kern := term.Kernel()
			wts := make([]float64, n)
			for i := range wts {
				wts[i] = float64((i*2654435761)%1009) / 1009.0
			}
			for _, r := range [][2]int{{0, n}, {0, 1}, {1, n}, {n - 1, n}, {n / 3, 2 * n / 3}} {
				lo, hi := r[0], r[1]
				ref := make([]float64, term.StatsSize())
				for i := lo; i < hi; i++ {
					term.AccumulateStats(tc.ds.Row(i), wts[i], ref)
				}
				got := make([]float64, term.StatsSize())
				kern.BlockAccumulateStats(cols, wts[lo:hi], lo, hi, got)
				for s := range ref {
					if !stats.AlmostEqual(got[s], ref[s], 1e-12) && !(got[s] == 0 && ref[s] == 0) {
						t.Fatalf("rows [%d,%d): stat %d = %v, reference %v", lo, hi, s, got[s], ref[s])
					}
				}
			}
		})
	}
}

// TestKernelLogProbFiniteness: kernels must never turn a representable
// log-density into NaN — a NaN would silently poison the E-step's
// normalization.
func TestKernelLogProbFiniteness(t *testing.T) {
	for _, tc := range kernelCases(t, 100) {
		pr := NewPriors(tc.ds, tc.ds.Summarize())
		term, err := NewTerm(tc.spec, tc.ds, pr)
		if err != nil {
			t.Fatal(err)
		}
		cols := tc.ds.All().Columns()
		out := make([]float64, 100)
		term.Kernel().BlockLogProb(cols, 0, 100, out)
		for i, v := range out {
			if math.IsNaN(v) {
				t.Fatalf("%s: row %d produced NaN", tc.name, i)
			}
		}
	}
}
