package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestLogSumExpBasic(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3)}
	got := LogSumExp(xs)
	want := math.Log(6)
	if !AlmostEqual(got, want, 1e-12) {
		t.Fatalf("LogSumExp = %v, want %v", got, want)
	}
}

func TestLogSumExpEmpty(t *testing.T) {
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(nil) should be -Inf")
	}
}

func TestLogSumExpAllNegInf(t *testing.T) {
	xs := []float64{math.Inf(-1), math.Inf(-1)}
	if !math.IsInf(LogSumExp(xs), -1) {
		t.Fatal("LogSumExp of all -Inf should be -Inf")
	}
}

func TestLogSumExpHugeMagnitudes(t *testing.T) {
	// Naive exp would overflow; the stable version must not.
	xs := []float64{1000, 1000 + math.Log(2)}
	got := LogSumExp(xs)
	want := 1000 + math.Log(3)
	if !AlmostEqual(got, want, 1e-12) {
		t.Fatalf("LogSumExp = %v, want %v", got, want)
	}
}

func TestLogAddMatchesLogSumExp(t *testing.T) {
	cases := [][2]float64{{0, 0}, {-5, 3}, {700, 710}, {math.Inf(-1), 2}, {4, math.Inf(-1)}}
	for _, c := range cases {
		got := LogAdd(c[0], c[1])
		want := LogSumExp(c[:])
		if !AlmostEqual(got, want, 1e-12) && !(math.IsInf(got, -1) && math.IsInf(want, -1)) {
			t.Fatalf("LogAdd(%v,%v) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

func TestNormalizeLogSumsToOne(t *testing.T) {
	logp := []float64{-1, -2, -3, -50}
	z := NormalizeLog(logp)
	if math.IsInf(z, -1) {
		t.Fatal("unexpected -Inf normalizer")
	}
	if s := Sum(logp); !AlmostEqual(s, 1, 1e-12) {
		t.Fatalf("normalized probabilities sum to %v", s)
	}
}

func TestNormalizeLogDegenerate(t *testing.T) {
	logp := []float64{math.Inf(-1), math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	z := NormalizeLog(logp)
	if !math.IsInf(z, -1) {
		t.Fatal("expected -Inf normalizer")
	}
	for _, p := range logp {
		if !AlmostEqual(p, 0.25, 1e-12) {
			t.Fatalf("degenerate normalize should be uniform, got %v", logp)
		}
	}
}

func TestQuickNormalizeLog(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logp := make([]float64, len(raw))
		for i, v := range raw {
			// Map arbitrary floats into a sane log-prob range.
			logp[i] = -math.Abs(math.Mod(v, 100))
		}
		NormalizeLog(logp)
		sum := Sum(logp)
		for _, p := range logp {
			if p < 0 || p > 1 {
				return false
			}
		}
		return AlmostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	m, err := Mean(xs)
	if err != nil || !AlmostEqual(m, 2.8, 1e-12) {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	lo, hi, err := MinMax(xs)
	if err != nil || lo != 1 || hi != 5 {
		t.Fatalf("MinMax = %v, %v, %v", lo, hi, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatal("Mean(nil) should return ErrEmpty")
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatal("MinMax(nil) should return ErrEmpty")
	}
}

func TestMomentsAgainstDirect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 10}
	ws := []float64{1, 2, 1, 0.5, 3}
	var m Moments
	for i := range xs {
		m.Add(xs[i], ws[i])
	}
	wsum := Sum(ws)
	mean := 0.0
	for i := range xs {
		mean += ws[i] * xs[i]
	}
	mean /= wsum
	variance := 0.0
	for i := range xs {
		d := xs[i] - mean
		variance += ws[i] * d * d
	}
	variance /= wsum
	if !AlmostEqual(m.Mean(), mean, 1e-12) {
		t.Fatalf("weighted mean %v, want %v", m.Mean(), mean)
	}
	if !AlmostEqual(m.Variance(), variance, 1e-12) {
		t.Fatalf("weighted variance %v, want %v", m.Variance(), variance)
	}
	if !AlmostEqual(m.Weight(), wsum, 1e-12) {
		t.Fatalf("weight %v, want %v", m.Weight(), wsum)
	}
}

func TestMomentsIgnoreNonPositiveWeight(t *testing.T) {
	var m Moments
	m.Add(5, 0)
	m.Add(7, -1)
	if m.Weight() != 0 || m.Mean() != 0 || m.Variance() != 0 {
		t.Fatal("non-positive weights must be ignored")
	}
}

func TestMomentsMergeEqualsSequential(t *testing.T) {
	r := rng.New(5)
	var whole, left, right Moments
	for i := 0; i < 1000; i++ {
		x := r.NormMS(3, 2)
		w := r.Float64() + 0.1
		whole.Add(x, w)
		if i < 500 {
			left.Add(x, w)
		} else {
			right.Add(x, w)
		}
	}
	left.Merge(right)
	if !AlmostEqual(left.Mean(), whole.Mean(), 1e-10) {
		t.Fatalf("merged mean %v != %v", left.Mean(), whole.Mean())
	}
	if !AlmostEqual(left.Variance(), whole.Variance(), 1e-10) {
		t.Fatalf("merged variance %v != %v", left.Variance(), whole.Variance())
	}
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	a.Add(2, 1)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Fatal("merging empty accumulator changed state")
	}
	b.Merge(a) // merging into empty copies
	if b != before {
		t.Fatal("merging into empty accumulator should copy")
	}
}

func TestLogNormalPDFIntegratesToOne(t *testing.T) {
	// Trapezoid integration of exp(logpdf) over a wide range.
	const mean, sigma = 1.5, 0.7
	sum := 0.0
	const step = 0.001
	for x := mean - 8*sigma; x <= mean+8*sigma; x += step {
		sum += math.Exp(LogNormalPDF(x, mean, sigma)) * step
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("normal pdf integrates to %v", sum)
	}
}

func TestLogNormalPDFPeak(t *testing.T) {
	if LogNormalPDF(0, 0, 1) < LogNormalPDF(1, 0, 1) {
		t.Fatal("pdf should peak at the mean")
	}
}

func TestLogBetaSymmetry(t *testing.T) {
	if !AlmostEqual(LogBeta(2, 5), LogBeta(5, 2), 1e-12) {
		t.Fatal("LogBeta should be symmetric")
	}
	// B(1,1) = 1.
	if !AlmostEqual(LogBeta(1, 1), 0, 1e-12) {
		t.Fatalf("LogBeta(1,1) = %v, want 0", LogBeta(1, 1))
	}
}

func TestLogDirichletNormMatchesBeta(t *testing.T) {
	got := LogDirichletNorm([]float64{2, 5})
	want := LogBeta(2, 5)
	if !AlmostEqual(got, want, 1e-12) {
		t.Fatalf("LogDirichletNorm = %v, want %v", got, want)
	}
}

func TestRelDiff(t *testing.T) {
	if RelDiff(100, 101) > 0.02 {
		t.Fatal("RelDiff(100,101) should be about 0.01")
	}
	if RelDiff(0, 0) != 0 {
		t.Fatal("RelDiff(0,0) should be 0")
	}
	if RelDiff(0, 0.5) != 0.5 {
		t.Fatal("RelDiff uses scale floor of 1")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-13, 1e-9) {
		t.Fatal("tiny relative difference should be equal")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Fatal("1 and 2 should not be almost equal")
	}
	if AlmostEqual(math.NaN(), math.NaN(), 1) {
		t.Fatal("NaNs are never almost equal")
	}
	if !AlmostEqual(1e20, 1e20*(1+1e-12), 1e-9) {
		t.Fatal("large values compare relatively")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil || !AlmostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, %v; want %v", c.q, got, err, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatal("Quantile(nil) should be ErrEmpty")
	}
	if _, err := Quantile(xs, 2); err == nil {
		t.Fatal("Quantile out of range should error")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.9, 1.5, 2.9, -5, 99}
	counts := Histogram(xs, 0, 3, 3)
	// -5 clamps into bin 0, 99 clamps into bin 2.
	want := []int{3, 1, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", counts, want)
		}
	}
	if got := Histogram(xs, 3, 0, 3); Sum64(got) != 0 {
		t.Fatalf("degenerate range should count nothing, got %v", got)
	}
}

// Sum64 sums an []int (test helper).
func Sum64(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestChiSquareUniform(t *testing.T) {
	if ChiSquareUniform([]int{100, 100, 100, 100}) != 0 {
		t.Fatal("perfectly uniform counts should have zero statistic")
	}
	if ChiSquareUniform([]int{400, 0, 0, 0}) <= 100 {
		t.Fatal("highly skewed counts should have large statistic")
	}
	if ChiSquareUniform(nil) != 0 {
		t.Fatal("empty counts should be zero")
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if d := KLDivergence(p, p); !AlmostEqual(d, 0, 1e-12) {
		t.Fatalf("KL(p||p) = %v", d)
	}
	q := []float64{0.9, 0.1}
	if d := KLDivergence(p, q); d <= 0 {
		t.Fatalf("KL(p||q) = %v, want positive", d)
	}
	if d := KLDivergence([]float64{1, 0}, []float64{0, 1}); !math.IsInf(d, 1) {
		t.Fatalf("KL with disjoint support should be +Inf, got %v", d)
	}
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]float64{1}); h != 0 {
		t.Fatalf("point mass entropy %v", h)
	}
	want := math.Log(4)
	if h := Entropy([]float64{0.25, 0.25, 0.25, 0.25}); !AlmostEqual(h, want, 1e-12) {
		t.Fatalf("uniform entropy %v, want %v", h, want)
	}
}

func TestQuickLogSumExpMonotone(t *testing.T) {
	// Adding an element never decreases the LogSumExp.
	f := func(xs []float64, extraRaw float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, v := range xs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, math.Mod(v, 500))
			}
		}
		if len(clean) == 0 {
			return true
		}
		extra := math.Mod(extraRaw, 500)
		if math.IsNaN(extra) {
			extra = 0
		}
		before := LogSumExp(clean)
		after := LogSumExp(append(clean, extra))
		return after >= before-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLogSumExp(b *testing.B) {
	xs := make([]float64, 64)
	r := rng.New(1)
	for i := range xs {
		xs[i] = r.NormMS(0, 10)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += LogSumExp(xs)
	}
	_ = sink
}

func BenchmarkMomentsAdd(b *testing.B) {
	var m Moments
	for i := 0; i < b.N; i++ {
		m.Add(float64(i%100), 1)
	}
	_ = m.Mean()
}
