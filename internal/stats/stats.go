// Package stats provides the numerical routines shared by the AutoClass
// engine, the model terms, and the test suite: numerically stable
// log-domain reductions, weighted and streaming moments, and simple
// goodness-of-fit helpers.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions that require at least one value.
var ErrEmpty = errors.New("stats: empty input")

// LogSumExp returns log(sum_i exp(xs[i])) computed stably. It returns -Inf
// for an empty slice and handles -Inf entries (zero probabilities)
// gracefully.
func LogSumExp(xs []float64) float64 {
	maxVal := math.Inf(-1)
	for _, x := range xs {
		if x > maxVal {
			maxVal = x
		}
	}
	if math.IsInf(maxVal, -1) {
		return math.Inf(-1) // all zero probabilities (or empty)
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - maxVal)
	}
	return maxVal + math.Log(sum)
}

// LogAdd returns log(exp(a) + exp(b)) stably.
func LogAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// NormalizeLog converts a slice of unnormalized log-probabilities into
// probabilities in place and returns the log of the normalizer. The result
// sums to 1 unless every input is -Inf, in which case the slice is set to a
// uniform distribution and -Inf is returned.
func NormalizeLog(logp []float64) float64 {
	z := LogSumExp(logp)
	if math.IsInf(z, -1) {
		u := 1 / float64(len(logp))
		for i := range logp {
			logp[i] = u
		}
		return z
	}
	for i := range logp {
		logp[i] = math.Exp(logp[i] - z)
	}
	return z
}

// Sum returns the plain sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or an error for empty input.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// MinMax returns the smallest and largest values in xs, or an error for
// empty input.
func MinMax(xs []float64) (minVal, maxVal float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minVal, maxVal = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minVal {
			minVal = x
		}
		if x > maxVal {
			maxVal = x
		}
	}
	return minVal, maxVal, nil
}

// Moments is a streaming accumulator for weighted first and second moments
// using West's weighted extension of Welford's algorithm. The zero value is
// an empty accumulator ready for use.
type Moments struct {
	w    float64 // total weight
	mean float64
	m2   float64 // sum of w * (x - mean)^2
}

// Add folds value x with weight w (w >= 0) into the accumulator.
func (m *Moments) Add(x, w float64) {
	if w <= 0 {
		return
	}
	m.w += w
	delta := x - m.mean
	r := delta * w / m.w
	m.mean += r
	m.m2 += m.w * delta * r * (m.w - w) / m.w
}

// AddUnweighted folds x with weight 1.
func (m *Moments) AddUnweighted(x float64) { m.Add(x, 1) }

// MomentsFromSums reconstructs an accumulator from raw reduced sums
// (Σw, Σw·x, Σw·x²) — the form in which moments travel through an
// Allreduce. Non-positive total weight yields an empty accumulator.
func MomentsFromSums(w, sum, sumsq float64) Moments {
	if w <= 0 {
		return Moments{}
	}
	mean := sum / w
	m2 := sumsq - sum*sum/w
	if m2 < 0 {
		m2 = 0
	}
	return Moments{w: w, mean: mean, m2: m2}
}

// Merge folds another accumulator into this one (parallel Welford merge).
func (m *Moments) Merge(o Moments) {
	if o.w == 0 {
		return
	}
	if m.w == 0 {
		*m = o
		return
	}
	total := m.w + o.w
	delta := o.mean - m.mean
	m.m2 += o.m2 + delta*delta*m.w*o.w/total
	m.mean += delta * o.w / total
	m.w = total
}

// Weight returns the accumulated total weight.
func (m *Moments) Weight() float64 { return m.w }

// Mean returns the weighted mean (0 if no weight accumulated).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the weighted population variance (0 if no weight).
func (m *Moments) Variance() float64 {
	if m.w == 0 {
		return 0
	}
	v := m.m2 / m.w
	if v < 0 { // guard tiny negative from rounding
		return 0
	}
	return v
}

// StdDev returns the weighted population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// HalfLog2Pi is 0.5·log(2π), the Gaussian normalization constant. It is a
// package variable computed once at init rather than an untyped constant so
// that it is bitwise identical to the 0.5*math.Log(2*math.Pi) the reference
// density used to evaluate per case — hoisting it must not change a single
// bit of any trajectory.
var HalfLog2Pi = 0.5 * math.Log(2*math.Pi)

// LogNormalPDF returns log N(x | mean, sigma). Sigma must be positive.
func LogNormalPDF(x, mean, sigma float64) float64 {
	z := (x - mean) / sigma
	return -0.5*z*z - math.Log(sigma) - HalfLog2Pi
}

// LgammaPlus returns log Γ(x) for x > 0 (sign dropped; callers in this
// repository only use positive arguments, where Γ is positive).
func LgammaPlus(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LogBeta returns log B(a, b) = lgamma(a) + lgamma(b) - lgamma(a+b).
func LogBeta(a, b float64) float64 {
	return LgammaPlus(a) + LgammaPlus(b) - LgammaPlus(a+b)
}

// LogDirichletNorm returns the log normalizing constant of a Dirichlet with
// the given concentration vector: sum lgamma(a_i) - lgamma(sum a_i).
func LogDirichletNorm(alpha []float64) float64 {
	sum := 0.0
	acc := 0.0
	for _, a := range alpha {
		acc += LgammaPlus(a)
		sum += a
	}
	return acc - LgammaPlus(sum)
}

// RelDiff returns |a-b| / max(|a|, |b|, 1), a scale-free difference used by
// the convergence tests.
func RelDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return d / scale
}

// AlmostEqual reports whether a and b agree to within tol both relatively
// and absolutely (whichever is looser), treating NaNs as unequal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It sorts a copy of xs.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]. Values
// outside the range are clamped into the end bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || hi <= lo {
		return counts
	}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// ChiSquareUniform returns the chi-square statistic of observed counts
// against a uniform expectation. Used by tests to sanity-check samplers.
func ChiSquareUniform(counts []int) float64 {
	n := 0
	for _, c := range counts {
		n += c
	}
	if n == 0 || len(counts) == 0 {
		return 0
	}
	want := float64(n) / float64(len(counts))
	stat := 0.0
	for _, c := range counts {
		d := float64(c) - want
		stat += d * d / want
	}
	return stat
}

// KLDivergence returns sum p_i log(p_i/q_i) for probability vectors p and q
// (entries where p_i == 0 contribute zero). It returns +Inf if some q_i is
// zero where p_i > 0.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: KL length mismatch")
	}
	d := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	return d
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}
