package eval

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustCT(t *testing.T, labels, clusters []int) *Contingency {
	t.Helper()
	ct, err := NewContingency(labels, clusters)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestContingencyValidation(t *testing.T) {
	if _, err := NewContingency([]int{0, 1}, []int{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewContingency([]int{-1}, []int{0}); err == nil {
		t.Error("negative label accepted")
	}
	if _, err := NewContingency([]int{0}, []int{-2}); err == nil {
		t.Error("negative cluster accepted")
	}
	ct := mustCT(t, nil, nil)
	if ct.N != 0 || ct.Purity() != 0 || ct.AdjustedRandIndex() != 0 {
		t.Error("empty contingency should be all zeros")
	}
}

func TestContingencyCounts(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2}
	clusters := []int{1, 1, 0, 0, 0}
	ct := mustCT(t, labels, clusters)
	if ct.N != 5 {
		t.Fatalf("N=%d", ct.N)
	}
	if ct.Counts[0][1] != 2 || ct.Counts[1][0] != 2 || ct.Counts[2][0] != 1 {
		t.Fatalf("counts %v", ct.Counts)
	}
	if ct.LabelTotals[0] != 2 || ct.ClusterTotals[0] != 3 {
		t.Fatalf("marginals %v %v", ct.LabelTotals, ct.ClusterTotals)
	}
}

func TestPerfectClustering(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2}
	// Same partition under a relabeling.
	clusters := []int{2, 2, 0, 0, 1, 1}
	ct := mustCT(t, labels, clusters)
	if p := ct.Purity(); p != 1 {
		t.Fatalf("purity %v", p)
	}
	if ari := ct.AdjustedRandIndex(); math.Abs(ari-1) > 1e-12 {
		t.Fatalf("ARI %v", ari)
	}
	if nmi := ct.NormalizedMutualInformation(); math.Abs(nmi-1) > 1e-12 {
		t.Fatalf("NMI %v", nmi)
	}
}

func TestIndependentClusteringScoresNearZero(t *testing.T) {
	r := rng.New(7)
	const n = 20000
	labels := make([]int, n)
	clusters := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = r.Intn(4)
		clusters[i] = r.Intn(4) // independent of the label
	}
	ct := mustCT(t, labels, clusters)
	if ari := ct.AdjustedRandIndex(); math.Abs(ari) > 0.01 {
		t.Fatalf("ARI of independent partitions %v", ari)
	}
	if nmi := ct.NormalizedMutualInformation(); nmi > 0.01 {
		t.Fatalf("NMI of independent partitions %v", nmi)
	}
	// Purity of 4 balanced random clusters vs 4 balanced labels ~ 0.25-0.3.
	if p := ct.Purity(); p < 0.2 || p > 0.4 {
		t.Fatalf("purity %v", p)
	}
}

func TestDegenerateSingleCluster(t *testing.T) {
	labels := []int{0, 0, 0, 0}
	clusters := []int{0, 0, 0, 0}
	ct := mustCT(t, labels, clusters)
	if ct.AdjustedRandIndex() != 1 {
		t.Fatalf("degenerate identical partitions should score 1, got %v", ct.AdjustedRandIndex())
	}
	if ct.NormalizedMutualInformation() != 1 {
		t.Fatalf("degenerate NMI %v", ct.NormalizedMutualInformation())
	}
}

func TestSplitClusterReducesARI(t *testing.T) {
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1}
	perfect := []int{0, 0, 0, 0, 1, 1, 1, 1}
	split := []int{0, 0, 2, 2, 1, 1, 1, 1} // label 0 split into two clusters
	ariPerfect := mustCT(t, labels, perfect).AdjustedRandIndex()
	ariSplit := mustCT(t, labels, split).AdjustedRandIndex()
	if ariSplit >= ariPerfect {
		t.Fatalf("split %v should score below perfect %v", ariSplit, ariPerfect)
	}
	// Splitting keeps purity at 1 (each cluster still pure).
	if p := mustCT(t, labels, split).Purity(); p != 1 {
		t.Fatalf("split purity %v", p)
	}
}

func TestMutualInformationKnownValue(t *testing.T) {
	// Two balanced binary partitions, identical: I = H = log 2.
	labels := []int{0, 0, 1, 1}
	ct := mustCT(t, labels, labels)
	if mi := ct.MutualInformation(); math.Abs(mi-math.Log(2)) > 1e-12 {
		t.Fatalf("MI %v, want log2 = %v", mi, math.Log(2))
	}
}

// Property: metrics are invariant under cluster relabeling.
func TestQuickRelabelInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(200) + 10
		k := r.Intn(5) + 1
		labels := make([]int, n)
		clusters := make([]int, n)
		for i := 0; i < n; i++ {
			labels[i] = r.Intn(k)
			clusters[i] = r.Intn(k)
		}
		perm := r.Perm(k)
		relabeled := make([]int, n)
		for i := range clusters {
			relabeled[i] = perm[clusters[i]]
		}
		a, err := NewContingency(labels, clusters)
		if err != nil {
			return false
		}
		b, err := NewContingency(labels, relabeled)
		if err != nil {
			return false
		}
		const tol = 1e-9
		return math.Abs(a.Purity()-b.Purity()) < tol &&
			math.Abs(a.AdjustedRandIndex()-b.AdjustedRandIndex()) < tol &&
			math.Abs(a.NormalizedMutualInformation()-b.NormalizedMutualInformation()) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ARI and NMI are bounded, purity in [max-label-share, 1].
func TestQuickMetricBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(300) + 5
		labels := make([]int, n)
		clusters := make([]int, n)
		for i := 0; i < n; i++ {
			labels[i] = r.Intn(4)
			clusters[i] = r.Intn(6)
		}
		ct, err := NewContingency(labels, clusters)
		if err != nil {
			return false
		}
		p := ct.Purity()
		nmi := ct.NormalizedMutualInformation()
		ari := ct.AdjustedRandIndex()
		return p >= 0 && p <= 1 && nmi >= 0 && nmi <= 1 && ari <= 1 && ari >= -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
