// Package eval provides external clustering-quality measures for
// validating discovered classifications against known (planted or expert)
// labels: the contingency table, purity, the adjusted Rand index and
// normalized mutual information. AutoClass itself never sees labels; these
// metrics exist so the examples and the test suite can state "the planted
// structure was recovered" quantitatively.
package eval

import (
	"errors"
	"math"
)

// Contingency is the label × cluster co-occurrence table.
type Contingency struct {
	// Counts[l][c] is the number of items with true label l assigned to
	// cluster c.
	Counts [][]int
	// LabelTotals and ClusterTotals are the marginals; N the grand total.
	LabelTotals   []int
	ClusterTotals []int
	N             int
}

// NewContingency tabulates labels against cluster assignments. The two
// slices must have equal length; labels and clusters must be non-negative.
func NewContingency(labels, clusters []int) (*Contingency, error) {
	if len(labels) != len(clusters) {
		return nil, errors.New("eval: labels and clusters length mismatch")
	}
	nl, nc := 0, 0
	for i := range labels {
		if labels[i] < 0 || clusters[i] < 0 {
			return nil, errors.New("eval: negative label or cluster id")
		}
		if labels[i] >= nl {
			nl = labels[i] + 1
		}
		if clusters[i] >= nc {
			nc = clusters[i] + 1
		}
	}
	ct := &Contingency{
		Counts:        make([][]int, nl),
		LabelTotals:   make([]int, nl),
		ClusterTotals: make([]int, nc),
		N:             len(labels),
	}
	for l := range ct.Counts {
		ct.Counts[l] = make([]int, nc)
	}
	for i := range labels {
		ct.Counts[labels[i]][clusters[i]]++
		ct.LabelTotals[labels[i]]++
		ct.ClusterTotals[clusters[i]]++
	}
	return ct, nil
}

// Purity returns the fraction of items whose cluster's dominant label is
// their own label — the fraction correct under the best per-cluster
// relabeling.
func (ct *Contingency) Purity() float64 {
	if ct.N == 0 {
		return 0
	}
	correct := 0
	for c := range ct.ClusterTotals {
		best := 0
		for l := range ct.Counts {
			if ct.Counts[l][c] > best {
				best = ct.Counts[l][c]
			}
		}
		correct += best
	}
	return float64(correct) / float64(ct.N)
}

// choose2 returns C(n, 2) as a float64.
func choose2(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * float64(n-1) / 2
}

// AdjustedRandIndex returns the Hubert–Arabie adjusted Rand index:
// 1 for identical partitions (up to relabeling), ~0 for independent ones,
// possibly negative for adversarial ones.
func (ct *Contingency) AdjustedRandIndex() float64 {
	sumCells := 0.0
	for l := range ct.Counts {
		for c := range ct.Counts[l] {
			sumCells += choose2(ct.Counts[l][c])
		}
	}
	sumLabels := 0.0
	for _, t := range ct.LabelTotals {
		sumLabels += choose2(t)
	}
	sumClusters := 0.0
	for _, t := range ct.ClusterTotals {
		sumClusters += choose2(t)
	}
	total := choose2(ct.N)
	if total == 0 {
		return 0
	}
	expected := sumLabels * sumClusters / total
	maxIdx := (sumLabels + sumClusters) / 2
	if maxIdx == expected {
		// Degenerate partitions (e.g. everything in one cluster on both
		// sides): identical by convention.
		return 1
	}
	return (sumCells - expected) / (maxIdx - expected)
}

// MutualInformation returns I(labels; clusters) in nats.
func (ct *Contingency) MutualInformation() float64 {
	if ct.N == 0 {
		return 0
	}
	n := float64(ct.N)
	mi := 0.0
	for l := range ct.Counts {
		for c := range ct.Counts[l] {
			nij := float64(ct.Counts[l][c])
			if nij == 0 {
				continue
			}
			mi += nij / n * math.Log(nij*n/(float64(ct.LabelTotals[l])*float64(ct.ClusterTotals[c])))
		}
	}
	if mi < 0 {
		mi = 0 // rounding guard
	}
	return mi
}

// entropyOf returns the Shannon entropy (nats) of a marginal.
func entropyOf(totals []int, n int) float64 {
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, t := range totals {
		if t == 0 {
			continue
		}
		p := float64(t) / float64(n)
		h -= p * math.Log(p)
	}
	return h
}

// NormalizedMutualInformation returns NMI with arithmetic-mean
// normalization: 2·I / (H(labels) + H(clusters)), in [0, 1]. Degenerate
// single-group partitions on both sides score 1 by convention.
func (ct *Contingency) NormalizedMutualInformation() float64 {
	hl := entropyOf(ct.LabelTotals, ct.N)
	hc := entropyOf(ct.ClusterTotals, ct.N)
	if hl+hc == 0 {
		return 1
	}
	nmi := 2 * ct.MutualInformation() / (hl + hc)
	if nmi > 1 {
		nmi = 1 // rounding guard
	}
	return nmi
}
