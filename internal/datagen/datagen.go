// Package datagen builds the synthetic workloads used throughout the
// benchmarks and examples. The central generator reproduces the paper's
// evaluation dataset — a mixture of Gaussian clusters over two real
// attributes — and further generators provide the motivating workloads from
// the paper's introduction (satellite-image pixels, protein feature
// vectors) and mixed real/discrete data for the multinomial model term.
package datagen

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// Component is one cluster of a Gaussian mixture: a weight, a mean vector
// and a per-dimension standard deviation vector (axis-aligned covariance).
type Component struct {
	Weight float64
	Mean   []float64
	Sigma  []float64
}

// GaussianMixture describes a mixture over D real attributes.
type GaussianMixture struct {
	Name       string
	AttrNames  []string
	Components []Component
}

// Validate checks the spec for consistency.
func (g *GaussianMixture) Validate() error {
	if len(g.AttrNames) == 0 {
		return fmt.Errorf("datagen: mixture %q has no attributes", g.Name)
	}
	if len(g.Components) == 0 {
		return fmt.Errorf("datagen: mixture %q has no components", g.Name)
	}
	d := len(g.AttrNames)
	total := 0.0
	for i, c := range g.Components {
		if len(c.Mean) != d || len(c.Sigma) != d {
			return fmt.Errorf("datagen: mixture %q component %d dims mismatch", g.Name, i)
		}
		if c.Weight <= 0 {
			return fmt.Errorf("datagen: mixture %q component %d non-positive weight", g.Name, i)
		}
		for _, s := range c.Sigma {
			if s <= 0 {
				return fmt.Errorf("datagen: mixture %q component %d non-positive sigma", g.Name, i)
			}
		}
		total += c.Weight
	}
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return fmt.Errorf("datagen: mixture %q weights do not sum finitely", g.Name)
	}
	return nil
}

// Generate samples n instances. Labels (the true component of each
// instance) are returned alongside the dataset for use by the accuracy
// tests; AutoClass itself never sees them.
func (g *GaussianMixture) Generate(n int, seed uint64) (*dataset.Dataset, []int, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if n < 0 {
		return nil, nil, fmt.Errorf("datagen: negative instance count %d", n)
	}
	attrs := make([]dataset.Attribute, len(g.AttrNames))
	for i, name := range g.AttrNames {
		attrs[i] = dataset.Attribute{Name: name, Type: dataset.Real}
	}
	ds, err := dataset.New(g.Name, attrs)
	if err != nil {
		return nil, nil, err
	}
	ds.Grow(n)
	r := rng.New(seed)
	weights := make([]float64, len(g.Components))
	for i, c := range g.Components {
		weights[i] = c.Weight
	}
	labels := make([]int, n)
	row := make([]float64, len(attrs))
	for i := 0; i < n; i++ {
		j := r.Categorical(weights)
		labels[i] = j
		c := &g.Components[j]
		for k := range row {
			row[k] = r.NormMS(c.Mean[k], c.Sigma[k])
		}
		if err := ds.AppendRow(row); err != nil {
			return nil, nil, err
		}
	}
	return ds, labels, nil
}

// PaperMixture returns the synthetic workload modeled on the paper's
// evaluation dataset: two real attributes with a handful of well-separated
// Gaussian clusters of unequal weight. The paper gives no cluster layout;
// five moderately separated clusters is the conventional reading of "asked
// the system to find the best clustering" with start_j_list up to 64.
func PaperMixture() *GaussianMixture {
	return &GaussianMixture{
		Name:      "paper-synthetic",
		AttrNames: []string{"x", "y"},
		Components: []Component{
			{Weight: 0.30, Mean: []float64{0, 0}, Sigma: []float64{1.0, 1.0}},
			{Weight: 0.25, Mean: []float64{8, 2}, Sigma: []float64{1.2, 0.8}},
			{Weight: 0.20, Mean: []float64{-6, 7}, Sigma: []float64{0.9, 1.4}},
			{Weight: 0.15, Mean: []float64{3, -9}, Sigma: []float64{1.5, 1.0}},
			{Weight: 0.10, Mean: []float64{-4, -5}, Sigma: []float64{0.7, 0.7}},
		},
	}
}

// Paper generates n tuples of the paper's synthetic dataset.
func Paper(n int, seed uint64) (*dataset.Dataset, error) {
	ds, _, err := PaperMixture().Generate(n, seed)
	return ds, err
}

// SatImageMixture models the Landsat/TM clustering workload the paper cites
// ([6], FIFE image): pixels with four spectral-band intensities drawn from
// land-cover classes with distinct spectral signatures.
func SatImageMixture() *GaussianMixture {
	return &GaussianMixture{
		Name:      "satimage-synthetic",
		AttrNames: []string{"band1", "band2", "band3", "band4"},
		Components: []Component{
			// water: dark in IR bands
			{Weight: 0.18, Mean: []float64{62, 48, 30, 12}, Sigma: []float64{4, 4, 3, 2}},
			// bare soil: bright across bands
			{Weight: 0.22, Mean: []float64{110, 105, 118, 95}, Sigma: []float64{7, 7, 8, 7}},
			// crops: strong near-IR reflectance
			{Weight: 0.28, Mean: []float64{70, 62, 55, 130}, Sigma: []float64{5, 5, 6, 9}},
			// forest: moderate IR, dark visible
			{Weight: 0.20, Mean: []float64{58, 50, 42, 98}, Sigma: []float64{4, 4, 4, 7}},
			// urban: mixed, high variance
			{Weight: 0.12, Mean: []float64{95, 92, 96, 70}, Sigma: []float64{12, 12, 13, 11}},
		},
	}
}

// MixedMixtureSpec describes a mixture over both real and discrete
// attributes. Each class has, per real attribute, a mean and sigma; per
// discrete attribute, a categorical distribution over its levels.
type MixedMixtureSpec struct {
	Name      string
	RealNames []string
	Discrete  []dataset.Attribute // must be Discrete-typed
	Classes   []MixedClass
}

// MixedClass is one class of a MixedMixtureSpec.
type MixedClass struct {
	Weight float64
	Mean   []float64
	Sigma  []float64
	// LevelProbs[d][v] is the probability of level v for discrete
	// attribute d.
	LevelProbs [][]float64
}

// Validate checks the spec.
func (m *MixedMixtureSpec) Validate() error {
	if len(m.Classes) == 0 {
		return fmt.Errorf("datagen: mixed mixture %q has no classes", m.Name)
	}
	for i := range m.Discrete {
		if m.Discrete[i].Type != dataset.Discrete {
			return fmt.Errorf("datagen: mixed mixture %q attribute %q is not discrete", m.Name, m.Discrete[i].Name)
		}
		if err := m.Discrete[i].Validate(); err != nil {
			return err
		}
	}
	for ci, c := range m.Classes {
		if c.Weight <= 0 {
			return fmt.Errorf("datagen: mixed mixture %q class %d non-positive weight", m.Name, ci)
		}
		if len(c.Mean) != len(m.RealNames) || len(c.Sigma) != len(m.RealNames) {
			return fmt.Errorf("datagen: mixed mixture %q class %d real dims mismatch", m.Name, ci)
		}
		for _, s := range c.Sigma {
			if s <= 0 {
				return fmt.Errorf("datagen: mixed mixture %q class %d non-positive sigma", m.Name, ci)
			}
		}
		if len(c.LevelProbs) != len(m.Discrete) {
			return fmt.Errorf("datagen: mixed mixture %q class %d discrete dims mismatch", m.Name, ci)
		}
		for d, probs := range c.LevelProbs {
			if len(probs) != m.Discrete[d].Cardinality() {
				return fmt.Errorf("datagen: mixed mixture %q class %d attr %d level count mismatch", m.Name, ci, d)
			}
		}
	}
	return nil
}

// Generate samples n instances from the mixed mixture, returning the
// dataset and the true labels.
func (m *MixedMixtureSpec) Generate(n int, seed uint64) (*dataset.Dataset, []int, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	attrs := make([]dataset.Attribute, 0, len(m.RealNames)+len(m.Discrete))
	for _, name := range m.RealNames {
		attrs = append(attrs, dataset.Attribute{Name: name, Type: dataset.Real})
	}
	attrs = append(attrs, m.Discrete...)
	ds, err := dataset.New(m.Name, attrs)
	if err != nil {
		return nil, nil, err
	}
	ds.Grow(n)
	r := rng.New(seed)
	weights := make([]float64, len(m.Classes))
	for i := range m.Classes {
		weights[i] = m.Classes[i].Weight
	}
	labels := make([]int, n)
	row := make([]float64, len(attrs))
	for i := 0; i < n; i++ {
		ci := r.Categorical(weights)
		labels[i] = ci
		c := &m.Classes[ci]
		for k := range m.RealNames {
			row[k] = r.NormMS(c.Mean[k], c.Sigma[k])
		}
		for d := range m.Discrete {
			row[len(m.RealNames)+d] = float64(r.Categorical(c.LevelProbs[d]))
		}
		if err := ds.AppendRow(row); err != nil {
			return nil, nil, err
		}
	}
	return ds, labels, nil
}

// ProteinMixture models the protein-classification workload the paper
// cites ([3], Hunter & States): per-residue-window feature vectors with
// real physico-chemical features plus a discrete secondary-structure state.
func ProteinMixture() *MixedMixtureSpec {
	ss := dataset.Attribute{
		Name: "sstate", Type: dataset.Discrete,
		Levels: []string{"helix", "sheet", "coil"},
	}
	return &MixedMixtureSpec{
		Name:      "protein-synthetic",
		RealNames: []string{"hydrophobicity", "volume", "charge"},
		Discrete:  []dataset.Attribute{ss},
		Classes: []MixedClass{
			{Weight: 0.35, Mean: []float64{1.8, 120, 0.0}, Sigma: []float64{0.4, 18, 0.15},
				LevelProbs: [][]float64{{0.75, 0.10, 0.15}}},
			{Weight: 0.30, Mean: []float64{2.6, 150, -0.1}, Sigma: []float64{0.5, 22, 0.12},
				LevelProbs: [][]float64{{0.10, 0.70, 0.20}}},
			{Weight: 0.20, Mean: []float64{0.9, 95, 0.3}, Sigma: []float64{0.3, 14, 0.2},
				LevelProbs: [][]float64{{0.15, 0.15, 0.70}}},
			{Weight: 0.15, Mean: []float64{1.2, 170, -0.4}, Sigma: []float64{0.6, 25, 0.18},
				LevelProbs: [][]float64{{0.40, 0.30, 0.30}}},
		},
	}
}

// LogNormalMixture samples n instances from a mixture of log-normal
// clusters over one positive attribute (e.g. session durations, file
// sizes). Component j has median exp(mu_j) and log-domain spread sigma_j.
// It exercises the single_normal_ln model term.
func LogNormalMixture(n int, seed uint64) (*dataset.Dataset, []int, error) {
	components := []struct {
		weight, mu, sigma float64
	}{
		{0.5, math.Log(10), 0.3},  // median 10
		{0.3, math.Log(200), 0.4}, // median 200
		{0.2, math.Log(5000), 0.5},
	}
	ds, err := dataset.New("lognormal-synthetic", []dataset.Attribute{
		{Name: "size", Type: dataset.Real},
	})
	if err != nil {
		return nil, nil, err
	}
	ds.Grow(n)
	r := rng.New(seed)
	weights := make([]float64, len(components))
	for i, c := range components {
		weights[i] = c.weight
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		j := r.Categorical(weights)
		labels[i] = j
		x := math.Exp(r.NormMS(components[j].mu, components[j].sigma))
		if err := ds.AppendRow([]float64{x}); err != nil {
			return nil, nil, err
		}
	}
	return ds, labels, nil
}

// InjectMissing replaces each value of ds independently with Missing with
// probability rate, returning the number of values blanked. It mutates the
// dataset in place via row rewriting.
func InjectMissing(ds *dataset.Dataset, rate float64, seed uint64) (int, error) {
	if rate < 0 || rate >= 1 {
		return 0, fmt.Errorf("datagen: missing rate %v out of [0,1)", rate)
	}
	r := rng.New(seed)
	blanked := 0
	for i := 0; i < ds.N(); i++ {
		row := ds.Row(i)
		for k := range row {
			if !dataset.IsMissing(row[k]) && r.Float64() < rate {
				row[k] = dataset.Missing
				blanked++
			}
		}
	}
	return blanked, nil
}
