package datagen

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestPaperDatasetShape(t *testing.T) {
	ds, err := Paper(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2000 {
		t.Fatalf("N=%d", ds.N())
	}
	if ds.NumAttrs() != 2 {
		t.Fatalf("attrs=%d, want 2 real attributes as in the paper", ds.NumAttrs())
	}
	for k := 0; k < 2; k++ {
		if ds.Attr(k).Type != dataset.Real {
			t.Fatalf("attribute %d not real", k)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := PaperMixture().Generate(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := PaperMixture().Generate(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different datasets")
	}
	c, _, err := PaperMixture().Generate(500, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestGenerateLabelProportions(t *testing.T) {
	mix := PaperMixture()
	_, labels, err := mix.Generate(50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, len(mix.Components))
	for _, l := range labels {
		counts[l]++
	}
	totalW := 0.0
	for _, c := range mix.Components {
		totalW += c.Weight
	}
	for j, c := range mix.Components {
		got := counts[j] / 50000
		want := c.Weight / totalW
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("component %d frequency %v, want %v", j, got, want)
		}
	}
}

func TestGenerateComponentMoments(t *testing.T) {
	mix := PaperMixture()
	ds, labels, err := mix.Generate(60000, 5)
	if err != nil {
		t.Fatal(err)
	}
	moms := make([][]stats.Moments, len(mix.Components))
	for j := range moms {
		moms[j] = make([]stats.Moments, 2)
	}
	for i := 0; i < ds.N(); i++ {
		for k := 0; k < 2; k++ {
			moms[labels[i]][k].AddUnweighted(ds.Value(i, k))
		}
	}
	for j, c := range mix.Components {
		for k := 0; k < 2; k++ {
			if math.Abs(moms[j][k].Mean()-c.Mean[k]) > 0.1 {
				t.Fatalf("component %d attr %d mean %v, want %v", j, k, moms[j][k].Mean(), c.Mean[k])
			}
			if math.Abs(moms[j][k].StdDev()-c.Sigma[k]) > 0.1 {
				t.Fatalf("component %d attr %d sigma %v, want %v", j, k, moms[j][k].StdDev(), c.Sigma[k])
			}
		}
	}
}

func TestValidateRejectsBadMixtures(t *testing.T) {
	base := PaperMixture()
	cases := map[string]func(*GaussianMixture){
		"no-attrs":      func(g *GaussianMixture) { g.AttrNames = nil },
		"no-components": func(g *GaussianMixture) { g.Components = nil },
		"dims":          func(g *GaussianMixture) { g.Components[0].Mean = []float64{1} },
		"zero-weight":   func(g *GaussianMixture) { g.Components[0].Weight = 0 },
		"zero-sigma":    func(g *GaussianMixture) { g.Components[0].Sigma[0] = 0 },
	}
	for name, mutate := range cases {
		g := PaperMixture()
		mutate(g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %q: expected validation error", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base mixture invalid: %v", err)
	}
	if _, _, err := base.Generate(-1, 1); err == nil {
		t.Error("negative n accepted")
	}
}

func TestSatImageMixture(t *testing.T) {
	ds, labels, err := SatImageMixture().Generate(1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumAttrs() != 4 {
		t.Fatalf("satimage should have 4 bands, got %d", ds.NumAttrs())
	}
	if len(labels) != 1000 {
		t.Fatalf("labels %d", len(labels))
	}
}

func TestProteinMixtureMixedTypes(t *testing.T) {
	spec := ProteinMixture()
	ds, labels, err := spec.Generate(5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumAttrs() != 4 {
		t.Fatalf("attrs=%d", ds.NumAttrs())
	}
	if ds.Attr(3).Type != dataset.Discrete {
		t.Fatal("last attribute should be discrete")
	}
	// Discrete values must be valid level indices.
	card := ds.Attr(3).Cardinality()
	for i := 0; i < ds.N(); i++ {
		v := ds.Value(i, 3)
		if int(v) < 0 || int(v) >= card {
			t.Fatalf("row %d has invalid level %v", i, v)
		}
	}
	// Class 0 should be helix-dominated.
	helix := 0
	n0 := 0
	for i, l := range labels {
		if l == 0 {
			n0++
			if int(ds.Value(i, 3)) == 0 {
				helix++
			}
		}
	}
	if frac := float64(helix) / float64(n0); math.Abs(frac-0.75) > 0.05 {
		t.Fatalf("class 0 helix fraction %v, want ~0.75", frac)
	}
}

func TestMixedValidation(t *testing.T) {
	mk := func() *MixedMixtureSpec { return ProteinMixture() }
	cases := map[string]func(*MixedMixtureSpec){
		"no-classes":  func(m *MixedMixtureSpec) { m.Classes = nil },
		"zero-weight": func(m *MixedMixtureSpec) { m.Classes[0].Weight = 0 },
		"bad-sigma":   func(m *MixedMixtureSpec) { m.Classes[0].Sigma[0] = -1 },
		"real-dims":   func(m *MixedMixtureSpec) { m.Classes[0].Mean = nil },
		"probs-dims":  func(m *MixedMixtureSpec) { m.Classes[0].LevelProbs = nil },
		"level-count": func(m *MixedMixtureSpec) { m.Classes[0].LevelProbs[0] = []float64{1} },
		"not-discrete": func(m *MixedMixtureSpec) {
			m.Discrete[0] = dataset.Attribute{Name: "x2", Type: dataset.Real}
		},
	}
	for name, mutate := range cases {
		m := mk()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %q: expected validation error", name)
		}
	}
}

func TestInjectMissing(t *testing.T) {
	ds, err := Paper(5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	blanked, err := InjectMissing(ds, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := ds.N() * ds.NumAttrs()
	frac := float64(blanked) / float64(total)
	if math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("blanked fraction %v, want ~0.1", frac)
	}
	// Count actual missing cells.
	missing := 0
	for i := 0; i < ds.N(); i++ {
		for k := 0; k < ds.NumAttrs(); k++ {
			if dataset.IsMissing(ds.Value(i, k)) {
				missing++
			}
		}
	}
	if missing != blanked {
		t.Fatalf("reported %d blanked, found %d missing", blanked, missing)
	}
}

func TestInjectMissingRateValidation(t *testing.T) {
	ds, _ := Paper(10, 1)
	if _, err := InjectMissing(ds, -0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := InjectMissing(ds, 1.0, 1); err == nil {
		t.Error("rate 1.0 accepted")
	}
	if n, err := InjectMissing(ds, 0, 1); err != nil || n != 0 {
		t.Errorf("rate 0 should blank nothing: n=%d err=%v", n, err)
	}
}
