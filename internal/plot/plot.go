// Package plot renders multi-series line charts as ASCII — the closest a
// terminal gets to the paper's Figs. 6–8. The benchfigs tool uses it to
// draw the speedup and scaleup curves next to their tables.
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	// Label appears in the legend.
	Label string
	// Y are the values at the shared X positions.
	Y []float64
}

// Chart is a multi-series line chart over shared X positions.
type Chart struct {
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// X are the shared x positions (e.g. processor counts).
	X []float64
	// Series are the curves.
	Series []Series
	// Width and Height are the plot-area dimensions in characters
	// (defaults 60×18 if zero).
	Width, Height int
}

// seriesMarks assigns each series a distinct mark.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '='}

// Render draws the chart. It returns an error for empty or inconsistent
// input.
func (c *Chart) Render() (string, error) {
	if len(c.X) == 0 {
		return "", errors.New("plot: no x positions")
	}
	if len(c.Series) == 0 {
		return "", errors.New("plot: no series")
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return "", fmt.Errorf("plot: series %q has %d points for %d x positions", s.Label, len(s.Y), len(c.X))
		}
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 18
	}
	xmin, xmax := c.X[0], c.X[0]
	for _, x := range c.X {
		xmin = math.Min(xmin, x)
		xmax = math.Max(xmax, x)
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				return "", fmt.Errorf("plot: series %q contains a non-finite value", s.Label)
			}
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	// Grid of the plot area.
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	toCol := func(x float64) int {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		return col
	}
	toRow := func(y float64) int {
		row := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row
	}
	// Draw line segments between consecutive points, then overdraw marks.
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := 1; i < len(c.X); i++ {
			drawSegment(grid, toCol(c.X[i-1]), toRow(s.Y[i-1]), toCol(c.X[i]), toRow(s.Y[i]))
		}
		for i := range c.X {
			grid[toRow(s.Y[i])][toCol(c.X[i])] = mark
		}
	}
	// Assemble with axes.
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLab := fmt.Sprintf("%s ", c.YLabel)
	pad := strings.Repeat(" ", len(yLab))
	for r := 0; r < height; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%s%8.2f |%s\n", pad, ymax, string(grid[r]))
		case height - 1:
			fmt.Fprintf(&b, "%s%8.2f |%s\n", yLab, ymin, string(grid[r]))
		case height / 2:
			label := yLab
			if len(label) > len(pad) {
				label = label[:len(pad)]
			}
			fmt.Fprintf(&b, "%s%8s |%s\n", label, "", string(grid[r]))
		default:
			fmt.Fprintf(&b, "%s%8s |%s\n", pad, "", string(grid[r]))
		}
	}
	fmt.Fprintf(&b, "%s%8s +%s\n", pad, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s%8s  %-*.6g%*.6g  (%s)\n", pad, "", width/2, xmin, width/2-1, xmax, c.XLabel)
	// Legend.
	fmt.Fprintf(&b, "%s%8s  legend:", pad, "")
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s", seriesMarks[si%len(seriesMarks)], s.Label)
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// drawSegment rasterizes a line between two grid cells (Bresenham).
func drawSegment(grid [][]byte, c0, r0, c1, r1 int) {
	dc := abs(c1 - c0)
	dr := -abs(r1 - r0)
	sc := 1
	if c0 > c1 {
		sc = -1
	}
	sr := 1
	if r0 > r1 {
		sr = -1
	}
	err := dc + dr
	for {
		if grid[r0][c0] == ' ' {
			grid[r0][c0] = '.'
		}
		if c0 == c1 && r0 == r1 {
			return
		}
		e2 := 2 * err
		if e2 >= dr {
			err += dr
			c0 += sc
		}
		if e2 <= dc {
			err += dc
			r0 += sr
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
