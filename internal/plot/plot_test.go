package plot

import (
	"math"
	"strings"
	"testing"
)

func simpleChart() *Chart {
	return &Chart{
		Title:  "speedup",
		XLabel: "processors",
		YLabel: "T1/Tp",
		X:      []float64{1, 2, 4, 8},
		Series: []Series{
			{Label: "100k", Y: []float64{1, 1.9, 3.8, 7.4}},
			{Label: "5k", Y: []float64{1, 1.7, 2.6, 3.0}},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	out, err := simpleChart().Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"speedup", "processors", "legend:", "* 100k", "o 5k", "7.40", "1.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Marks for both series appear.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("marks missing:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	c := simpleChart()
	c.X = nil
	if _, err := c.Render(); err == nil {
		t.Error("empty X accepted")
	}
	c = simpleChart()
	c.Series = nil
	if _, err := c.Render(); err == nil {
		t.Error("no series accepted")
	}
	c = simpleChart()
	c.Series[0].Y = []float64{1}
	if _, err := c.Render(); err == nil {
		t.Error("length mismatch accepted")
	}
	c = simpleChart()
	c.Series[0].Y[0] = math.NaN()
	if _, err := c.Render(); err == nil {
		t.Error("NaN accepted")
	}
	c = simpleChart()
	c.Series[0].Y[0] = math.Inf(1)
	if _, err := c.Render(); err == nil {
		t.Error("Inf accepted")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := &Chart{
		X:      []float64{1, 2, 3},
		Series: []Series{{Label: "flat", Y: []float64{5, 5, 5}}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	c := &Chart{
		X:      []float64{3},
		Series: []Series{{Label: "pt", Y: []float64{2}}},
	}
	if _, err := c.Render(); err != nil {
		t.Fatal(err)
	}
}

func TestIncreasingCurveOrientation(t *testing.T) {
	// An increasing curve's mark in the last column must be on a higher
	// row (smaller row index) than the first column's.
	c := &Chart{
		X:      []float64{0, 10},
		Series: []Series{{Label: "up", Y: []float64{0, 10}}},
		Width:  20, Height: 10,
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	firstMarkRow, lastMarkRow := -1, -1
	for r, line := range lines {
		idx := strings.IndexByte(line, '*')
		if idx < 0 {
			continue
		}
		if lastMarkRow == -1 || idx > strings.IndexByte(lines[lastMarkRow], '*') {
			lastMarkRow = r
		}
		if firstMarkRow == -1 {
			firstMarkRow = r
		}
	}
	if firstMarkRow == -1 {
		t.Fatalf("no marks:\n%s", out)
	}
	// The highest Y (value 10) renders near the top; since the curve is
	// increasing, the topmost mark is the right endpoint.
	top := lines[firstMarkRow]
	if strings.IndexByte(top, '*') < len(top)/2 {
		t.Fatalf("top mark not on the right for an increasing curve:\n%s", out)
	}
}

func TestManySeriesCycleMarks(t *testing.T) {
	c := &Chart{X: []float64{1, 2}}
	for i := 0; i < 12; i++ {
		c.Series = append(c.Series, Series{Label: "s", Y: []float64{float64(i), float64(i + 1)}})
	}
	if _, err := c.Render(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultDimensions(t *testing.T) {
	c := simpleChart()
	c.Width, c.Height = 0, 0
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 18 rows + axis + xlabel + legend
	if len(lines) != 1+18+3 {
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}
