package simnet

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/mpi"
)

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 1000: 10}
	for p, want := range cases {
		if got := CeilLog2(p); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestMachineValidate(t *testing.T) {
	if err := MeikoCS2().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PentiumPC().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Machine{Name: "bad", OpRate: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero op rate accepted")
	}
	neg := Machine{Name: "neg", OpRate: 1, Alpha: -1}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestCollectiveCosts(t *testing.T) {
	m := Machine{Name: "m", OpRate: 1, Alpha: 1e-3, Beta: 1e-6}
	if c := m.BcastCost(1, 100); c != 0 {
		t.Fatalf("single-rank bcast cost %v", c)
	}
	// p=4: 2 rounds of (alpha + 100 bytes * beta).
	want := 2 * (1e-3 + 100e-6)
	if c := m.BcastCost(4, 100); math.Abs(c-want) > 1e-12 {
		t.Fatalf("bcast cost %v, want %v", c, want)
	}
	if c := m.AllreduceCost(4, 100); math.Abs(c-2*want) > 1e-12 {
		t.Fatalf("allreduce cost %v, want %v", c, 2*want)
	}
	if m.ReduceCost(4, 100) != m.BcastCost(4, 100) {
		t.Fatal("reduce and bcast tree costs should match")
	}
	// Cost grows with P in log steps.
	if m.AllreduceCost(8, 100) <= m.AllreduceCost(4, 100) {
		t.Fatal("cost should grow with P")
	}
}

func TestClockChargeOps(t *testing.T) {
	clk := MustNewClock(Machine{Name: "m", OpRate: 1000})
	clk.ChargeOps(500)
	if got := clk.Elapsed(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("elapsed %v, want 0.5", got)
	}
	if clk.Ops() != 500 {
		t.Fatalf("ops %v", clk.Ops())
	}
	clk.ChargeOps(-10) // ignored
	clk.ChargeOps(math.NaN())
	if got := clk.Elapsed(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("negative/NaN charge changed the clock: %v", got)
	}
	clk.ChargeSeconds(0.25)
	if got := clk.Elapsed(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("elapsed %v, want 0.75", got)
	}
	clk.Reset()
	if clk.Elapsed() != 0 || clk.Ops() != 0 || clk.CommSeconds() != 0 || clk.Collectives() != 0 {
		t.Fatal("reset did not zero the clock")
	}
}

func TestNewClockRejectsBadMachine(t *testing.T) {
	if _, err := NewClock(Machine{}); err == nil {
		t.Fatal("bad machine accepted")
	}
}

func TestSyncAllreduceSynchronizesToMax(t *testing.T) {
	m := Machine{Name: "m", OpRate: 1e6, Alpha: 1e-3, Beta: 0}
	const p = 4
	elapsed := make([]float64, p)
	comms := make([]float64, p)
	err := mpi.Run(p, func(c *mpi.Comm) error {
		clk := MustNewClock(m)
		// Rank r computes r+1 million ops => r+1 seconds.
		clk.ChargeOps(float64(c.Rank()+1) * 1e6)
		if err := clk.SyncAllreduce(c, 10); err != nil {
			return err
		}
		elapsed[c.Rank()] = clk.Elapsed()
		comms[c.Rank()] = clk.CommSeconds()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cost := m.AllreduceCost(p, 80)
	want := 4.0 + cost // slowest rank took 4 s
	for r := 0; r < p; r++ {
		if math.Abs(elapsed[r]-want) > 1e-9 {
			t.Fatalf("rank %d elapsed %v, want %v", r, elapsed[r], want)
		}
	}
	// Rank 0 waited 3 s + cost; rank 3 waited only cost.
	if math.Abs(comms[0]-(3+cost)) > 1e-9 {
		t.Fatalf("rank 0 comm %v, want %v", comms[0], 3+cost)
	}
	if math.Abs(comms[3]-cost) > 1e-9 {
		t.Fatalf("rank 3 comm %v, want %v", comms[3], cost)
	}
}

func TestSyncSingleRankIsFree(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		clk := MustNewClock(MeikoCS2())
		clk.ChargeOps(100)
		before := clk.Elapsed()
		if err := clk.SyncAllreduce(c, 1000); err != nil {
			return err
		}
		if clk.Elapsed() != before {
			return fmt.Errorf("single-rank sync charged time")
		}
		if clk.Collectives() != 1 {
			return fmt.Errorf("collective not counted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSyncVariants(t *testing.T) {
	err := mpi.Run(3, func(c *mpi.Comm) error {
		clk := MustNewClock(MeikoCS2())
		if err := clk.SyncBcast(c, 5); err != nil {
			return err
		}
		if err := clk.SyncBarrier(c); err != nil {
			return err
		}
		if clk.Collectives() != 2 {
			return fmt.Errorf("collectives %d", clk.Collectives())
		}
		if clk.Elapsed() <= 0 {
			return fmt.Errorf("no cost charged")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScaleupIsFlatUnderTheModel(t *testing.T) {
	// The property behind the paper's Fig. 8: with fixed work per rank,
	// elapsed virtual time grows only by the slow log-P communication term.
	m := MeikoCS2()
	perRankOps := 400000.0 // ~10k tuples, 8 clusters, one cycle
	times := make(map[int]float64)
	for _, p := range []int{1, 2, 4, 8, 10} {
		var t0 float64
		err := mpi.Run(p, func(c *mpi.Comm) error {
			clk := MustNewClock(m)
			clk.ChargeOps(perRankOps)
			if err := clk.SyncAllreduce(c, 60); err != nil {
				return err
			}
			if c.Rank() == 0 {
				t0 = clk.Elapsed()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		times[p] = t0
	}
	if times[10] > times[1]*1.1 {
		t.Fatalf("scaleup not flat: T(1)=%v T(10)=%v", times[1], times[10])
	}
	if times[10] < times[1] {
		t.Fatalf("T(10)=%v should not beat T(1)=%v with fixed per-rank work", times[10], times[1])
	}
}

func TestFormatHMS(t *testing.T) {
	cases := map[float64]string{
		0:      "0.00.00",
		59:     "0.00.59",
		60:     "0.01.00",
		3599:   "0.59.59",
		3600:   "1.00.00",
		7325:   "2.02.05",
		-5:     "0.00.00",
		3599.6: "1.00.00", // rounds
	}
	for in, want := range cases {
		if got := FormatHMS(in); got != want {
			t.Errorf("FormatHMS(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestAllreduceCostAlgo(t *testing.T) {
	m := Machine{Name: "m", OpRate: 1, Alpha: 1e-3, Beta: 1e-7}
	const bytes = 1000
	// Single rank is always free.
	for _, algo := range []mpi.AllreduceAlgo{mpi.ReduceBcast, mpi.RecursiveDoubling, mpi.Ring} {
		if c := m.AllreduceCostAlgo(algo, 1, bytes); c != 0 {
			t.Fatalf("%v: single-rank cost %v", algo, c)
		}
	}
	// Power-of-two P: recursive doubling is exactly half of reduce+bcast.
	rb := m.AllreduceCostAlgo(mpi.ReduceBcast, 8, bytes)
	rd := m.AllreduceCostAlgo(mpi.RecursiveDoubling, 8, bytes)
	if math.Abs(rd*2-rb) > 1e-12 {
		t.Fatalf("rd=%v rb=%v", rd, rb)
	}
	// Non-power-of-two adds two fold-in rounds.
	rd10 := m.AllreduceCostAlgo(mpi.RecursiveDoubling, 10, bytes)
	wantRounds := float64(CeilLog2(10) + 2)
	if math.Abs(rd10-wantRounds*(1e-3+bytes*1e-7)) > 1e-12 {
		t.Fatalf("rd10=%v", rd10)
	}
	// Ring: 2(P-1) rounds of 1/P fragments.
	ring := m.AllreduceCostAlgo(mpi.Ring, 4, bytes)
	want := 2.0 * 3 * (1e-3 + bytes*1e-7/4)
	if math.Abs(ring-want) > 1e-12 {
		t.Fatalf("ring=%v want %v", ring, want)
	}
	// Latency-dominated regime: ring loses. Bandwidth-dominated: ring wins.
	smallMsg := m.AllreduceCostAlgo(mpi.Ring, 8, 100)
	if smallMsg <= m.AllreduceCostAlgo(mpi.RecursiveDoubling, 8, 100) {
		t.Fatal("ring should lose on small messages")
	}
	bigBytes := 100_000_000
	if m.AllreduceCostAlgo(mpi.Ring, 8, bigBytes) >= m.AllreduceCostAlgo(mpi.ReduceBcast, 8, bigBytes) {
		t.Fatal("ring should win on huge messages")
	}
}

func TestPCClusterPreset(t *testing.T) {
	pc := PCCluster()
	if err := pc.Validate(); err != nil {
		t.Fatal(err)
	}
	meiko := MeikoCS2()
	// The PC cluster's interconnect is worse on both axes.
	if pc.Alpha <= meiko.Alpha || pc.Beta <= meiko.Beta {
		t.Fatal("PC cluster should have a slower interconnect than the CS-2")
	}
}

func TestSyncAllreduceAlgoChargesAlgorithmCost(t *testing.T) {
	m := Machine{Name: "m", OpRate: 1e6, Alpha: 1e-3, Beta: 0}
	err := mpi.Run(4, func(c *mpi.Comm) error {
		rb := MustNewClock(m)
		rd := MustNewClock(m)
		if err := rb.SyncAllreduceAlgo(c, mpi.ReduceBcast, 10); err != nil {
			return err
		}
		if err := rd.SyncAllreduceAlgo(c, mpi.RecursiveDoubling, 10); err != nil {
			return err
		}
		if rd.Elapsed() >= rb.Elapsed() {
			return fmt.Errorf("rd %v should beat rb %v", rd.Elapsed(), rb.Elapsed())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContendedCostsExceedSwitched(t *testing.T) {
	switched := Machine{Name: "sw", OpRate: 1, Alpha: 1e-3, Beta: 1e-6}
	hub := switched
	hub.Contended = true
	hub.Name = "hub"
	const bytes = 10000
	for _, p := range []int{2, 4, 8, 10} {
		if hub.BcastCost(p, bytes) < switched.BcastCost(p, bytes) {
			t.Fatalf("p=%d: contended bcast cheaper than switched", p)
		}
		for _, algo := range []mpi.AllreduceAlgo{mpi.ReduceBcast, mpi.RecursiveDoubling, mpi.Ring} {
			if hub.AllreduceCostAlgo(algo, p, bytes) < switched.AllreduceCostAlgo(algo, p, bytes) {
				t.Fatalf("p=%d algo=%v: contended cheaper than switched", p, algo)
			}
		}
	}
	// At p=2 a single transfer per stage: identical costs.
	if hub.BcastCost(2, bytes) != switched.BcastCost(2, bytes) {
		t.Fatal("p=2 should cost the same on hub and switch")
	}
	// Contended bcast bandwidth term covers all P-1 transfers.
	got := hub.BcastCost(8, bytes)
	want := 3*hub.Alpha + 7*float64(bytes)*hub.Beta
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("contended bcast %v, want %v", got, want)
	}
}

func TestEthernetHubPreset(t *testing.T) {
	hub := EthernetHubCluster()
	if err := hub.Validate(); err != nil {
		t.Fatal(err)
	}
	if !hub.Contended {
		t.Fatal("hub cluster should be contended")
	}
	// The shared segment is far slower than the switched Fast Ethernet.
	if hub.Beta <= PCCluster().Beta {
		t.Fatal("hub should have less bandwidth than the switched cluster")
	}
}

func TestStragglerDominatesGroupTime(t *testing.T) {
	// Heterogeneous nodes: one rank at half speed drags every clock to its
	// own finish time at the next collective — the reason the paper's
	// equal-size partitions matter ("it also does not have load balancing
	// problems", §3).
	fast := Machine{Name: "fast", OpRate: 2e6, Alpha: 1e-4, Beta: 0}
	slow := fast
	slow.OpRate = 1e6
	const p = 4
	const work = 1e6 // ops per rank
	elapsed := make([]float64, p)
	err := mpi.Run(p, func(c *mpi.Comm) error {
		m := fast
		if c.Rank() == p-1 {
			m = slow
		}
		clk := MustNewClock(m)
		clk.ChargeOps(work)
		if err := clk.SyncAllreduce(c, 8); err != nil {
			return err
		}
		elapsed[c.Rank()] = clk.Elapsed()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantMin := work / slow.OpRate // 1 second: the straggler's compute time
	for r, e := range elapsed {
		if e < wantMin {
			t.Fatalf("rank %d finished in %v, before the straggler's %v", r, e, wantMin)
		}
		if e > wantMin*1.01 {
			t.Fatalf("rank %d took %v, far beyond the straggler bound", r, e)
		}
	}
}

// Cores × SetParallelism scales computation time, capped at the node's core
// count, and never changes the op-unit totals or communication terms.
func TestChargeOpsScalesWithParallelism(t *testing.T) {
	m := SMPCluster()
	if m.Cores != 8 {
		t.Fatalf("SMPCluster cores %d", m.Cores)
	}
	base := MustNewClock(m)
	base.ChargeOps(1e6)
	cases := []struct {
		par     int
		speedup float64
	}{
		{0, 1}, {1, 1}, {4, 4}, {8, 8}, {64, 8}, // capped at Cores
	}
	for _, c := range cases {
		clk := MustNewClock(m)
		clk.SetParallelism(c.par)
		clk.ChargeOps(1e6)
		want := base.Elapsed() / c.speedup
		if math.Abs(clk.Elapsed()-want) > 1e-12*want {
			t.Errorf("par %d: elapsed %v, want %v", c.par, clk.Elapsed(), want)
		}
		if clk.Ops() != base.Ops() {
			t.Errorf("par %d: ops %v changed (work is not divided, time is)", c.par, clk.Ops())
		}
	}
	// Single-core presets are immune to the knob.
	clk := MustNewClock(MeikoCS2())
	clk.SetParallelism(16)
	clk.ChargeOps(1e6)
	ref := MustNewClock(MeikoCS2())
	ref.ChargeOps(1e6)
	if clk.Elapsed() != ref.Elapsed() {
		t.Errorf("single-core machine sped up: %v vs %v", clk.Elapsed(), ref.Elapsed())
	}
}

func TestValidateRejectsNegativeCores(t *testing.T) {
	m := MeikoCS2()
	m.Cores = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative Cores accepted")
	}
}
