// Package simnet models the parallel machine of the paper's evaluation — a
// distributed-memory multicomputer in the mold of the Meiko CS-2 — so that
// the experiments can report elapsed times, speedup and scaleup with the
// communication/computation balance of 1990s hardware, which no longer
// exists to run on.
//
// The model is the standard alpha-beta (LogP-lite) cost model. Every rank
// owns a virtual Clock. Computation is charged as abstract "op units"
// (defined by the engine: one item × class × attribute likelihood or
// statistics update is one unit) converted to seconds by the machine's
// OpRate. Communication is charged at collective boundaries: a tree
// collective over P ranks with an m-byte payload costs
//
//	rounds(P) × (Alpha + m·Beta)
//
// on its critical path, with rounds = ceil(log2 P) for broadcast/reduce and
// 2·ceil(log2 P) for an Allreduce implemented as reduce+broadcast, which is
// what P-AutoClass's total exchange uses. At every collective the ranks'
// clocks synchronize to the maximum (a collective cannot complete before
// its slowest participant) plus the collective's cost.
//
// The presets are calibrated against the paper's published anchors rather
// than hardware datasheets; see their doc comments.
package simnet

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Machine describes a multicomputer node and interconnect.
type Machine struct {
	// Name labels the machine in reports.
	Name string
	// OpRate is abstract engine op units per second per processor.
	OpRate float64
	// Alpha is the per-message overhead+latency in seconds (software
	// stack included, hence much larger than wire latency).
	Alpha float64
	// Beta is seconds per byte of payload (1/bandwidth).
	Beta float64
	// Cores is the number of processor cores per node available to a
	// rank's intra-rank (shared-memory) parallelism. Zero means one. The
	// interconnect terms are per node, so Cores scales only computation:
	// a clock whose rank runs the hybrid engine with Parallelism p divides
	// op time by min(p, Cores).
	Cores int
	// Contended marks a shared-medium network (a hub or bus rather than
	// the CS-2's fat tree or a switch): transfers that a tree collective
	// would overlap instead serialize on the wire, so each stage pays for
	// every concurrent transfer's bytes. The fat tree and switched
	// networks have full bisection for these patterns and leave this
	// false.
	Contended bool
}

// Validate checks the machine parameters.
func (m Machine) Validate() error {
	if m.OpRate <= 0 {
		return fmt.Errorf("simnet: machine %q has non-positive op rate", m.Name)
	}
	if m.Alpha < 0 || m.Beta < 0 {
		return fmt.Errorf("simnet: machine %q has negative communication cost", m.Name)
	}
	if m.Cores < 0 {
		return fmt.Errorf("simnet: machine %q has negative core count", m.Name)
	}
	return nil
}

// MeikoCS2 is the paper's experimental platform: a Meiko Computing
// Surface 2 with SPARC processors on a fat-tree network with 50 MB/s links
// (paper §4). OpRate is calibrated so that one base_cycle iteration over
// 10 000 tuples/processor with 8 clusters costs ≈0.3 s and with 16 clusters
// ≈0.6 s, the levels the paper's Fig. 8 reports; Alpha reflects the
// effective per-message cost of the era's MPI stacks.
func MeikoCS2() Machine {
	return Machine{
		Name:   "Meiko CS-2 (SPARC, fat tree)",
		OpRate: 1.2e6,
		Alpha:  300e-6,
		Beta:   1.0 / 50e6,
		Cores:  1,
	}
}

// PCCluster models the commodity PC cluster the paper's portability claim
// targets ("P-AutoClass is portable practically on every parallel machine
// from supercomputers to PC clusters", §3.1): Pentium-class nodes on
// switched Fast Ethernet — faster processors than the CS-2's SPARCs but a
// much slower, higher-latency interconnect. Useful for exploring where the
// speedup curves bend on cheaper hardware.
func PCCluster() Machine {
	return Machine{
		Name:   "PC cluster (Fast Ethernet)",
		OpRate: 2.4e6,
		Alpha:  900e-6,
		Beta:   1.0 / 12.5e6, // 100 Mb/s
		Cores:  1,
	}
}

// EthernetHubCluster models the cheapest 1990s option: PC nodes on a
// shared 10 Mb/s Ethernet segment (a hub, not a switch), where concurrent
// transfers contend for the single medium. Useful for showing where the
// paper's portability claim meets its limits.
func EthernetHubCluster() Machine {
	return Machine{
		Name:      "PC cluster (shared 10 Mb/s Ethernet)",
		OpRate:    2.4e6,
		Alpha:     1.2e-3,
		Beta:      1.0 / 1.25e6, // 10 Mb/s
		Contended: true,
		Cores:     1,
	}
}

// PentiumPC is the sequential anchor machine from the paper's §3: AutoClass
// C on a Pentium PC needed over 3 hours for 14K tuples. A Pentium of that
// vintage ran the C engine roughly twice as fast per op as one CS-2 SPARC
// node; it has no interconnect.
func PentiumPC() Machine {
	return Machine{
		Name:   "Pentium PC",
		OpRate: 2.4e6,
		Alpha:  0,
		Beta:   0,
		Cores:  1,
	}
}

// SMPCluster models a cluster of small shared-memory nodes — the natural
// target of the hybrid engine: each rank owns one multi-core node and runs
// the base_cycle's data-parallel phases on Cores workers while the ranks
// still exchange sufficient statistics over the switch. OpRate is per core.
func SMPCluster() Machine {
	return Machine{
		Name:   "SMP cluster (8-core nodes, Gigabit Ethernet)",
		OpRate: 5.0e7,
		Alpha:  20e-6,
		Beta:   1.0 / 125e6, // 1 Gb/s
		Cores:  8,
	}
}

// CeilLog2 returns ceil(log2(p)) with CeilLog2(1) == 0.
func CeilLog2(p int) int {
	if p <= 1 {
		return 0
	}
	n := 0
	v := 1
	for v < p {
		v <<= 1
		n++
	}
	return n
}

// BcastCost returns the critical-path seconds of a binomial-tree broadcast
// of `bytes` over p ranks. On a contended medium, stage s of the tree has
// 2^s simultaneous transfers that serialize on the shared wire.
func (m Machine) BcastCost(p, bytes int) float64 {
	rounds := CeilLog2(p)
	if rounds == 0 {
		return 0
	}
	if !m.Contended {
		return float64(rounds) * (m.Alpha + float64(bytes)*m.Beta)
	}
	cost := 0.0
	concurrent := 1
	remaining := p - 1 // transfers left to perform in total
	for s := 0; s < rounds; s++ {
		c := concurrent
		if c > remaining {
			c = remaining
		}
		cost += m.Alpha + float64(c)*float64(bytes)*m.Beta
		remaining -= c
		concurrent *= 2
	}
	return cost
}

// ReduceCost returns the critical-path seconds of a binomial-tree reduction.
func (m Machine) ReduceCost(p, bytes int) float64 {
	return m.BcastCost(p, bytes)
}

// AllreduceCost returns the critical-path seconds of an Allreduce
// implemented as reduce + broadcast — the paper implementation's pattern.
func (m Machine) AllreduceCost(p, bytes int) float64 {
	return 2 * m.BcastCost(p, bytes)
}

// AllreduceCostAlgo returns the critical-path seconds of an Allreduce of
// `bytes` over p ranks under a specific collective algorithm:
//
//   - ReduceBcast: 2·ceil(log2 P) rounds of the full payload;
//   - RecursiveDoubling: ceil(log2 P) rounds of the full payload, plus two
//     fold-in rounds when P is not a power of two;
//   - Ring: 2·(P−1) rounds of 1/P-sized fragments — latency-heavy but
//     bandwidth-optimal for large payloads.
func (m Machine) AllreduceCostAlgo(algo mpi.AllreduceAlgo, p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	full := m.Alpha + float64(bytes)*m.Beta
	switch algo {
	case mpi.RecursiveDoubling:
		rounds := float64(CeilLog2(p))
		if p&(p-1) != 0 {
			rounds += 2
		}
		if m.Contended {
			// Every butterfly stage has P simultaneous full-payload
			// transfers sharing the wire.
			return rounds * (m.Alpha + float64(p)*float64(bytes)*m.Beta)
		}
		return rounds * full
	case mpi.Ring:
		if m.Contended {
			// Each ring step moves P fragments of bytes/P concurrently:
			// the wire carries the full payload per step.
			return 2 * float64(p-1) * full
		}
		frag := m.Alpha + float64(bytes)*m.Beta/float64(p)
		return 2 * float64(p-1) * frag
	default: // ReduceBcast
		return m.AllreduceCost(p, bytes)
	}
}

// GatherCost returns the critical-path seconds of a linear gather of
// bytesPerRank from every non-root rank to the root — the expensive
// weight-matrix collection of the update_wts-only parallelization baseline.
func (m Machine) GatherCost(p, bytesPerRank int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) * (m.Alpha + float64(bytesPerRank)*m.Beta)
}

// ClockObserver receives the clock's charges as they happen — the hook the
// observability layer uses to build a per-rank virtual timeline. ObserveOps
// fires after every computation charge with the op units and the virtual
// seconds they cost; ObserveSync fires after every multi-rank collective
// synchronization with the modeled collective cost and the idle seconds the
// rank spent waiting for the group's slowest member. Both are called with
// the clock already advanced, so Elapsed() minus the reported seconds gives
// the interval's virtual start time. Observers must not call back into the
// clock's charging or sync methods.
type ClockObserver interface {
	ObserveOps(units, seconds float64)
	ObserveSync(cost, wait float64)
}

// Clock is one rank's virtual clock. The zero value is invalid; use
// NewClock. Clock is not safe for concurrent use — each rank owns one.
type Clock struct {
	m       Machine
	par     int // intra-rank workers the engine runs with (0/1 = sequential)
	seconds float64
	ops     float64
	comm    float64
	colls   int
	obs     ClockObserver
}

// NewClock returns a zeroed clock on machine m.
func NewClock(m Machine) (*Clock, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Clock{m: m}, nil
}

// MustNewClock is NewClock for machine presets known to be valid.
func MustNewClock(m Machine) *Clock {
	c, err := NewClock(m)
	if err != nil {
		panic(err)
	}
	return c
}

// Machine returns the clock's machine model.
func (c *Clock) Machine() Machine { return c.m }

// SetParallelism tells the clock how many intra-rank workers the engine is
// running with, so ChargeOps can model the node-level speedup. Values below
// one are treated as one (sequential).
func (c *Clock) SetParallelism(p int) {
	if p < 1 {
		p = 1
	}
	c.par = p
}

// Parallelism returns the intra-rank worker count the clock models.
func (c *Clock) Parallelism() int {
	if c.par < 1 {
		return 1
	}
	return c.par
}

// speedup is the effective intra-rank computation speedup: the configured
// worker count, capped by the machine's cores per node (extra workers
// time-slice, they do not add throughput).
func (c *Clock) speedup() float64 {
	cores := c.m.Cores
	if cores < 1 {
		cores = 1
	}
	p := c.Parallelism()
	if p > cores {
		p = cores
	}
	return float64(p)
}

// SetObserver installs a ClockObserver (nil to disable). Observation never
// changes what the clock charges, only reports it.
func (c *Clock) SetObserver(o ClockObserver) { c.obs = o }

// ChargeOps advances the clock by units/(OpRate·speedup) seconds of
// computation, where speedup is min(SetParallelism, Machine.Cores). Op
// units are counted undivided — speedup compresses time, not work.
func (c *Clock) ChargeOps(units float64) {
	if units < 0 || math.IsNaN(units) {
		return
	}
	dt := units / (c.m.OpRate * c.speedup())
	c.ops += units
	c.seconds += dt
	if c.obs != nil {
		c.obs.ObserveOps(units, dt)
	}
}

// ChargeSeconds advances the clock by raw seconds (e.g. modeled I/O).
func (c *Clock) ChargeSeconds(s float64) {
	if s < 0 || math.IsNaN(s) {
		return
	}
	c.seconds += s
}

// Elapsed returns the virtual seconds so far.
func (c *Clock) Elapsed() float64 { return c.seconds }

// CommSeconds returns the portion of Elapsed charged to communication.
func (c *Clock) CommSeconds() float64 { return c.comm }

// CommFraction returns the share of the elapsed virtual time spent in
// communication (0 before any time has elapsed) — the quantity the
// bounded-staleness schedule (autoclass.Config.SyncEvery) is designed to
// shrink, and the y-axis of the ASYNC comm-fraction experiment.
func (c *Clock) CommFraction() float64 {
	if c.seconds <= 0 {
		return 0
	}
	return c.comm / c.seconds
}

// Ops returns total op units charged.
func (c *Clock) Ops() float64 { return c.ops }

// Collectives returns how many collective synchronizations were charged.
func (c *Clock) Collectives() int { return c.colls }

// Reset zeroes the clock.
func (c *Clock) Reset() {
	c.seconds, c.ops, c.comm, c.colls = 0, 0, 0, 0
}

// SyncAllreduce synchronizes the group's clocks at an Allreduce of
// payloadValues float64s: every clock jumps to the groupwide maximum plus
// the collective's modeled cost. Call it immediately after the real
// Allreduce so the virtual timeline mirrors the real exchange.
func (c *Clock) SyncAllreduce(comm *mpi.Comm, payloadValues int) error {
	return c.sync(comm, c.m.AllreduceCost(comm.Size(), 8*payloadValues))
}

// SyncAllreduceAlgo synchronizes at an Allreduce performed with a specific
// collective algorithm, charging that algorithm's modeled cost.
func (c *Clock) SyncAllreduceAlgo(comm *mpi.Comm, algo mpi.AllreduceAlgo, payloadValues int) error {
	return c.sync(comm, c.m.AllreduceCostAlgo(algo, comm.Size(), 8*payloadValues))
}

// SyncBcast synchronizes at a broadcast of payloadValues float64s.
func (c *Clock) SyncBcast(comm *mpi.Comm, payloadValues int) error {
	return c.sync(comm, c.m.BcastCost(comm.Size(), 8*payloadValues))
}

// SyncBarrier synchronizes at a barrier (empty payload, two tree phases).
func (c *Clock) SyncBarrier(comm *mpi.Comm) error {
	return c.sync(comm, c.m.AllreduceCost(comm.Size(), 0))
}

// SyncWithCost synchronizes the group's clocks at an arbitrary collective
// whose critical-path cost the caller computed (e.g. a gather followed by a
// broadcast in the WtsOnly baseline).
func (c *Clock) SyncWithCost(comm *mpi.Comm, cost float64) error {
	if cost < 0 || math.IsNaN(cost) {
		cost = 0
	}
	return c.sync(comm, cost)
}

func (c *Clock) sync(comm *mpi.Comm, cost float64) error {
	if comm.Size() == 1 {
		// A single rank pays no communication cost; skip the meta-exchange.
		c.colls++
		return nil
	}
	// The max-exchange below is simulation machinery, not modeled traffic:
	// hide it from the comm's collective observer so per-collective metrics
	// count exactly the collectives the engine performs.
	prev := comm.Observer()
	if prev != nil {
		comm.SetObserver(nil)
	}
	maxT, err := comm.AllreduceFloat64(mpi.Max, c.seconds)
	if prev != nil {
		comm.SetObserver(prev)
	}
	if err != nil {
		return fmt.Errorf("simnet: clock sync: %w", err)
	}
	wait := maxT - c.seconds
	c.seconds = maxT + cost
	c.comm += wait + cost
	c.colls++
	if c.obs != nil {
		c.obs.ObserveSync(cost, wait)
	}
	return nil
}

// FormatHMS renders seconds as the paper's h.mm.ss time format.
func FormatHMS(seconds float64) string {
	if seconds < 0 {
		seconds = 0
	}
	total := int(math.Round(seconds))
	h := total / 3600
	m := (total % 3600) / 60
	s := total % 60
	return fmt.Sprintf("%d.%02d.%02d", h, m, s)
}
