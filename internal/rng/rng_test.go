package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	// Child streams must differ from each other.
	diff := false
	for i := 0; i < 64; i++ {
		if c1.Uint64() != c2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split children produced identical streams")
	}
}

func TestSplitDeterministic(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	c1 := p1.Split(3)
	c2 := p2.Split(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("same split point produced different child streams")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for n := 1; n <= 20; n++ {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(17)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 5, 37} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(21)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestNormMS(t *testing.T) {
	r := New(23)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.NormMS(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("NormMS mean %v too far from 10", mean)
	}
}

func TestNormMSPanicsOnNegativeSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NormMS with negative sigma did not panic")
		}
	}()
	New(1).NormMS(0, -1)
}

func TestExpMean(t *testing.T) {
	r := New(29)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(31)
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			x := r.Gamma(shape)
			if x < 0 {
				t.Fatalf("negative gamma variate %v", x)
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Fatalf("Gamma(%v) mean %v too far from %v", shape, mean, shape)
		}
	}
}

func TestGammaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) did not panic")
		}
	}()
	New(1).Gamma(0)
}

func TestDirichletSimplex(t *testing.T) {
	r := New(37)
	alpha := []float64{1, 2, 3, 0.5}
	out := make([]float64, len(alpha))
	for i := 0; i < 1000; i++ {
		r.Dirichlet(alpha, out)
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				t.Fatalf("negative Dirichlet component %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet draw sums to %v", sum)
		}
	}
}

func TestDirichletMean(t *testing.T) {
	r := New(41)
	alpha := []float64{2, 6}
	out := make([]float64, 2)
	sum0 := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		r.Dirichlet(alpha, out)
		sum0 += out[0]
	}
	if mean := sum0 / n; math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("Dirichlet mean[0] %v too far from 0.25", mean)
	}
}

func TestDirichletLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	New(1).Dirichlet([]float64{1, 1}, make([]float64, 3))
}

func TestCategoricalRespectsWeights(t *testing.T) {
	r := New(43)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.15 {
		t.Fatalf("weight ratio %v too far from 3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"empty":    {},
		"all-zero": {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%s) did not panic", name)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

// Property: Intn output is always within bounds regardless of seed and n.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting with distinct tags at the same point gives distinct
// streams, and the parent remains deterministic afterwards.
func TestQuickSplitTagsDiffer(t *testing.T) {
	f := func(seed, tag uint64) bool {
		p1 := New(seed)
		p2 := New(seed)
		a := p1.Split(tag)
		b := p2.Split(tag + 1)
		diff := false
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				diff = true
			}
		}
		return diff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}
