// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used by the AutoClass engine and
// the synthetic workload generators.
//
// Determinism matters twice in this repository: the sequential and parallel
// engines must make bit-identical random decisions (class initialisation,
// restarts), and experiments must be reproducible run to run. The generator
// is therefore a pure-Go xoshiro256** with an explicit seed, plus a Split
// operation that derives statistically independent child streams — one per
// rank, per try, per class — without any shared state.
package rng

import (
	"math"
)

// Source is a deterministic xoshiro256** generator.
//
// The zero value is not usable; construct one with New or Split. Source is
// not safe for concurrent use; give each goroutine its own stream via Split.
type Source struct {
	s [4]uint64
}

// splitmix64 is used to expand seeds into full generator state, as
// recommended by the xoshiro authors.
func splitmix64(x uint64) (uint64, uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return x, z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give independent
// streams; the same seed always gives the same stream.
func New(seed uint64) *Source {
	var src Source
	x := seed
	for i := range src.s {
		x, src.s[i] = splitmix64(x)
	}
	// xoshiro state must not be all zero; splitmix64 output can only be all
	// zero with negligible probability, but be safe.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's. The receiver advances by one draw. Splitting the same
// parent at the same point with the same tag is deterministic.
func (r *Source) Split(tag uint64) *Source {
	return New(r.Uint64() ^ (tag * 0x9e3779b97f4a7c15))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// modulo bias is < 2^-32 for the n used in this repository, but reject
	// anyway to keep the stream exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Norm returns a standard normal variate (mean 0, stddev 1) using the
// Marsaglia polar method.
func (r *Source) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormMS returns a normal variate with the given mean and standard
// deviation. It panics if sigma < 0.
func (r *Source) NormMS(mean, sigma float64) float64 {
	if sigma < 0 {
		panic("rng: negative sigma")
	}
	return mean + sigma*r.Norm()
}

// Exp returns an exponential variate with rate 1.
func (r *Source) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia–Tsang method
// (with the shape<1 boost). It panics if shape <= 0.
func (r *Source) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: non-positive gamma shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet fills out with a draw from a Dirichlet distribution with the
// given concentration parameters. len(out) must equal len(alpha) and every
// alpha must be positive.
func (r *Source) Dirichlet(alpha []float64, out []float64) {
	if len(out) != len(alpha) {
		panic("rng: Dirichlet length mismatch")
	}
	sum := 0.0
	for i, a := range alpha {
		g := r.Gamma(a)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// All gammas underflowed; fall back to uniform.
		u := 1 / float64(len(out))
		for i := range out {
			out[i] = u
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Categorical returns an index sampled proportionally to the non-negative
// weights. It panics if the weights are empty or sum to zero.
func (r *Source) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: negative or NaN categorical weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("rng: categorical weights empty or all zero")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // guard against accumulated rounding
}
