package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchServeSmoke runs the harness on a small workload and checks the
// BENCH_serve.json invariants CI asserts on: the self-check passed, the
// percentiles are finite and ordered, throughput was measured, and the
// cycled bodies produced cache hits.
func TestBenchServeSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf bytes.Buffer
	err := run([]string{"-train-rows", "150", "-predict-rows", "40",
		"-bodies", "3", "-clients", "4", "-per-client", "6", "-o", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.BitwiseMatch {
		t.Error("self-check failed: responses diverged from baselines")
	}
	if rep.Requests <= 0 || rep.QPS <= 0 {
		t.Errorf("no throughput measured: %+v", rep)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms || math.IsInf(rep.P99Ms, 0) || math.IsNaN(rep.P99Ms) {
		t.Errorf("percentiles broken: p50 %v p99 %v", rep.P50Ms, rep.P99Ms)
	}
	if rep.BytesPerReq <= 0 {
		t.Errorf("bytes per request %v", rep.BytesPerReq)
	}
	// 4 clients × 6 requests over 3 bodies: every body repeats, so the
	// cache must have answered some of the traffic.
	if rep.CacheHitRate <= 0 {
		t.Errorf("cache hit rate %v, want > 0", rep.CacheHitRate)
	}
}

func TestBenchServeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-clients", "0"}, &buf); err == nil {
		t.Error("zero clients accepted")
	}
}
