// Command benchserve measures the pautoclassd predict tier end to end and
// emits BENCH_serve.json, the committed baseline of the production-serving
// acceptance: sustained concurrent predict traffic against a published
// model, with client-side p50/p99 latency, throughput at saturation,
// response bytes per request, and the response-cache hit rate.
//
// The run is self-checking. Before the load phase every request body is
// scored alone on an idle single-process server to fix its baseline bytes;
// then the daemon is restarted over the same state directory with
// scale-out predict workers, and every response — sharded, coalesced under
// concurrency, or replayed from the cache — must be byte-identical to its
// baseline, or the tool exits nonzero.
//
//	benchserve -train-rows 400 -clients 8 -per-client 50 -o BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/serve"
)

// Report is the BENCH_serve.json schema.
type Report struct {
	Goos   string `json:"goos"`
	Goarch string `json:"goarch"`

	TrainRows    int `json:"train_rows"`
	PredictRows  int `json:"predict_rows"`
	Bodies       int `json:"bodies"`
	Clients      int `json:"clients"`
	PerClient    int `json:"per_client"`
	PredictProcs int `json:"predict_procs"`

	// Load-phase results. Latencies are client-observed, exact order
	// statistics over every successful request.
	Requests    int     `json:"requests"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MeanMs      float64 `json:"mean_ms"`
	QPS         float64 `json:"qps"`
	BytesPerReq float64 `json:"bytes_per_req"`

	// CacheHitRate is hits/(hits+misses) from the model's registry stats.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Rejected counts 429/503 backpressure answers during the load phase.
	Rejected int `json:"rejected"`

	// BitwiseMatch records that every load-phase and scale-out response
	// was byte-identical to its idle single-process baseline, across the
	// daemon restart.
	BitwiseMatch bool `json:"bitwise_match"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchserve", flag.ContinueOnError)
	trainRows := fs.Int("train-rows", 400, "training rows")
	predictRows := fs.Int("predict-rows", 128, "rows per predict body")
	bodies := fs.Int("bodies", 6, "distinct predict bodies cycled by the clients")
	clients := fs.Int("clients", 8, "concurrent load clients")
	perClient := fs.Int("per-client", 50, "requests per client in the load phase")
	predictProcs := fs.Int("predict-procs", 2, "predict worker ranks in the scale-out phase")
	seed := fs.Uint64("seed", 29, "workload seed")
	out := fs.String("o", "BENCH_serve.json", "output path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bodies < 1 || *clients < 1 || *perClient < 1 {
		return fmt.Errorf("bodies, clients and per-client must be positive")
	}

	dir, err := os.MkdirTemp("", "benchserve")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	rep := Report{
		Goos: runtime.GOOS, Goarch: runtime.GOARCH,
		TrainRows: *trainRows, PredictRows: *predictRows, Bodies: *bodies,
		Clients: *clients, PerClient: *perClient, PredictProcs: *predictProcs,
		BitwiseMatch: true,
	}

	// Phase 1 — train, publish, and fix the single-process baselines.
	s1, err := serve.New(serve.Config{Dir: dir, Procs: 2, Logger: quiet})
	if err != nil {
		return err
	}
	ts1 := httptest.NewServer(s1)
	client := ts1.Client()

	jobID, err := train(client, ts1.URL, *trainRows, *seed)
	if err != nil {
		return err
	}
	var pub serve.PublishResponse
	if code, body, err := post(client, ts1.URL+"/v1/models",
		serve.PublishRequest{ID: "bench", JobID: jobID}); err != nil {
		return err
	} else if code != http.StatusCreated {
		return fmt.Errorf("publish: status %d: %s", code, body)
	} else if err := json.Unmarshal(body, &pub); err != nil {
		return err
	}

	reqBodies := make([][]byte, *bodies)
	baseline := make([][]byte, *bodies)
	for i := range reqBodies {
		ho, err := datagen.Paper(*predictRows, *seed+uint64(1000+i))
		if err != nil {
			return err
		}
		reqBodies[i], err = json.Marshal(serve.PredictRequest{Rows: wireRows(ho)})
		if err != nil {
			return err
		}
		code, body, err := postRaw(client, ts1.URL+"/v1/models/bench/predict", reqBodies[i])
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("baseline %d: status %d: %s", i, code, body)
		}
		baseline[i] = body
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		return err
	}

	// Phase 2 — restart over the same state with scale-out predict
	// workers. The registry must come back, and every response must keep
	// its baseline bytes.
	s2, err := serve.New(serve.Config{Dir: dir, Procs: 2, Logger: quiet,
		PredictProcs: *predictProcs})
	if err != nil {
		return err
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	client = ts2.Client()

	var info serve.ModelInfo
	if code, body, err := get(client, ts2.URL+"/v1/models/bench"); err != nil {
		return err
	} else if code != http.StatusOK {
		return fmt.Errorf("model info after restart: status %d", code)
	} else if err := json.Unmarshal(body, &info); err != nil {
		return err
	}
	if info.Active != pub.Version.Version || len(info.Versions) != 1 {
		return fmt.Errorf("registry did not survive the restart: %+v", info)
	}
	for i := range reqBodies {
		code, body, err := postRaw(client, ts2.URL+"/v1/models/bench/predict", reqBodies[i])
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("scale-out check %d: status %d", i, code)
		}
		if !bytes.Equal(body, baseline[i]) {
			rep.BitwiseMatch = false
			return fmt.Errorf("scale-out response %d differs from the single-process baseline", i)
		}
	}

	// Phase 3 — sustained concurrent load. Clients cycle the bodies, so
	// past the first round the cache can answer; every 200 is compared
	// against its baseline.
	type obsv struct {
		latency time.Duration
		bytes   int
	}
	all := make([][]obsv, *clients)
	var wg sync.WaitGroup
	errc := make(chan error, *clients)
	rejected := make([]int, *clients)
	start := time.Now()
	for g := 0; g < *clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < *perClient; i++ {
				bi := (g + i) % len(reqBodies)
				t0 := time.Now()
				code, body, err := postRaw(client, ts2.URL+"/v1/models/bench/predict", reqBodies[bi])
				lat := time.Since(t0)
				if err != nil {
					errc <- err
					return
				}
				switch code {
				case http.StatusOK:
					if !bytes.Equal(body, baseline[bi]) {
						errc <- fmt.Errorf("client %d: response %d differs from baseline under load", g, bi)
						return
					}
					all[g] = append(all[g], obsv{lat, len(body)})
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					rejected[g]++
				default:
					errc <- fmt.Errorf("client %d: status %d: %s", g, code, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		rep.BitwiseMatch = false
		return err
	}

	var lats []float64
	var totalBytes int64
	for g := range all {
		rep.Rejected += rejected[g]
		for _, o := range all[g] {
			lats = append(lats, float64(o.latency.Microseconds())/1e3)
			totalBytes += int64(o.bytes)
		}
	}
	if len(lats) == 0 {
		return fmt.Errorf("no successful requests in the load phase")
	}
	sort.Float64s(lats)
	rep.Requests = len(lats)
	rep.P50Ms = quantile(lats, 0.50)
	rep.P99Ms = quantile(lats, 0.99)
	for _, l := range lats {
		rep.MeanMs += l
	}
	rep.MeanMs /= float64(len(lats))
	rep.QPS = float64(len(lats)) / elapsed.Seconds()
	rep.BytesPerReq = float64(totalBytes) / float64(len(lats))

	if code, body, err := get(client, ts2.URL+"/v1/models/bench"); err != nil {
		return err
	} else if code != http.StatusOK {
		return fmt.Errorf("final model info: status %d", code)
	} else if err := json.Unmarshal(body, &info); err != nil {
		return err
	}
	if total := info.Cache.Hits + info.Cache.Misses; total > 0 {
		rep.CacheHitRate = float64(info.Cache.Hits) / float64(total)
	}

	raw, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *out == "-" {
		_, err = w.Write(raw)
		return err
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "benchserve: %d requests, p50 %.2fms p99 %.2fms, %.0f qps, cache hit rate %.2f -> %s\n",
		rep.Requests, rep.P50Ms, rep.P99Ms, rep.QPS, rep.CacheHitRate, *out)
	return nil
}

// quantile reads the exact q-th order statistic (nearest-rank) from a
// sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// train submits one paper-workload training job and polls it done.
func train(client *http.Client, base string, rows int, seed uint64) (string, error) {
	ds, err := datagen.Paper(rows, seed)
	if err != nil {
		return "", err
	}
	attrs := make([]serve.AttrSpec, ds.NumAttrs())
	for k, a := range ds.Attrs() {
		sp := serve.AttrSpec{Name: a.Name, Levels: a.Levels}
		if a.Type == dataset.Real {
			sp.Type = "real"
		} else {
			sp.Type = "discrete"
		}
		attrs[k] = sp
	}
	req := serve.JobRequest{
		Name: "bench", Attrs: attrs, Rows: wireRows(ds),
		Search: &serve.SearchSpec{StartJList: []int{3}, Tries: 1, MaxCycles: 30, Parallelism: 1},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	code, out, err := postRaw(client, base+"/v1/jobs", body)
	if err != nil {
		return "", err
	}
	if code != http.StatusAccepted {
		return "", fmt.Errorf("submit: status %d: %s", code, out)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return "", err
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		code, out, err := get(client, base+"/v1/jobs/"+st.ID)
		if err != nil {
			return "", err
		}
		if code != http.StatusOK {
			return "", fmt.Errorf("poll: status %d", code)
		}
		if err := json.Unmarshal(out, &st); err != nil {
			return "", err
		}
		switch st.State {
		case serve.StateDone:
			return st.ID, nil
		case serve.StateFailed:
			return "", fmt.Errorf("training failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("training stuck in %q", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// wireRows converts a dataset to the wire format (null = missing).
func wireRows(ds *dataset.Dataset) [][]*float64 {
	rows := make([][]*float64, ds.N())
	for i := range rows {
		src := ds.Row(i)
		row := make([]*float64, len(src))
		for k, v := range src {
			if !dataset.IsMissing(v) {
				v := v
				row[k] = &v
			}
		}
		rows[i] = row
	}
	return rows
}

func post(client *http.Client, url string, v any) (int, []byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	return postRaw(client, url, b)
}

func postRaw(client *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, out, err
}

func get(client *http.Client, url string) (int, []byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, out, err
}
