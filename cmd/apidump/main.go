// Command apidump prints the exported API surface of a package as a
// stable, diffable text file — the input to `make apicheck`, which fails
// CI whenever the facade surface changes without the committed api.txt
// being regenerated (`make api`).
//
// It drives `go doc -all` and keeps only the structural lines:
//
//   - column-0 lines (package clause, func/type/var/const declarations,
//     closing braces),
//   - tab-indented member lines (struct fields, interface methods,
//     grouped const/var names), minus comment-only lines.
//
// Doc prose (indented four spaces) and blank lines are dropped, so godoc
// edits never invalidate the golden file — only real signature changes do.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
)

func main() {
	out := flag.String("o", "-", "output path (- for stdout)")
	flag.Parse()
	pkg := "."
	if flag.NArg() > 0 {
		pkg = flag.Arg(0)
	}
	surface, err := dump(pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apidump:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(surface); err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}
}

func dump(pkg string) ([]byte, error) {
	cmd := exec.Command("go", "doc", "-all", pkg)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go doc -all %s: %v\n%s", pkg, err, stderr.String())
	}
	return filter(raw)
}

// filter keeps the structural lines of `go doc -all` output: declarations
// at column 0 and tab-indented members, dropping doc prose (4-space
// indent), comments and blank lines.
func filter(raw []byte) ([]byte, error) {
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "    "):
			// Doc prose (including CONSTANTS/FUNCTIONS/TYPES section
			// headers' surrounding text blocks).
			continue
		case strings.HasPrefix(line, "\t"):
			if t := strings.TrimSpace(line); t == "" || strings.HasPrefix(t, "//") {
				continue
			}
			// Strip trailing field/method comments so doc tweaks inside
			// declarations don't churn the surface file.
			if i := strings.Index(line, "//"); i > 0 {
				line = strings.TrimRight(line[:i], " \t")
				if strings.TrimSpace(line) == "" {
					continue
				}
			}
			out.WriteString(line)
			out.WriteByte('\n')
		default:
			// Column 0 carries both declarations and the package comment
			// (which `go doc` prints unindented); keep only declaration
			// shapes so doc edits never churn the surface file.
			if !isDecl(line) {
				continue
			}
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if out.Len() == 0 {
		return nil, fmt.Errorf("empty API surface")
	}
	return out.Bytes(), nil
}

// isDecl reports whether a column-0 line of `go doc -all` output is part
// of a declaration rather than package-comment prose.
func isDecl(line string) bool {
	for _, p := range []string{"package ", "func ", "type ", "var ", "const "} {
		if strings.HasPrefix(line, p) {
			return true
		}
	}
	// Closers of grouped const/var blocks and struct/interface bodies.
	return line == ")" || line == "}"
}
