package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestDatagenWorkloads(t *testing.T) {
	dir := t.TempDir()
	for _, wl := range []string{"paper", "satimage", "protein"} {
		out := filepath.Join(dir, wl+".txt")
		var buf bytes.Buffer
		err := run([]string{"-workload", wl, "-n", "100", "-seed", "3", "-o", out}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if !strings.Contains(buf.String(), "100 tuples") {
			t.Fatalf("%s: output %q", wl, buf.String())
		}
		ds, err := dataset.LoadFile(out)
		if err != nil {
			t.Fatalf("%s: reload: %v", wl, err)
		}
		if ds.N() != 100 {
			t.Fatalf("%s: N=%d", wl, ds.N())
		}
	}
}

func TestDatagenBinaryOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.bin")
	var buf bytes.Buffer
	if err := run([]string{"-n", "50", "-o", out}, &buf); err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 50 {
		t.Fatalf("N=%d", ds.N())
	}
}

func TestDatagenMissingInjection(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.txt")
	var buf bytes.Buffer
	if err := run([]string{"-n", "1000", "-missing", "0.2", "-o", out}, &buf); err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	missing := 0
	for i := 0; i < ds.N(); i++ {
		for k := 0; k < ds.NumAttrs(); k++ {
			if dataset.IsMissing(ds.Value(i, k)) {
				missing++
			}
		}
	}
	if missing == 0 {
		t.Fatal("no missing values injected")
	}
}

func TestDatagenErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "10"}, &buf); err == nil {
		t.Error("missing -o accepted")
	}
	if err := run([]string{"-workload", "nope", "-o", "x.txt"}, &buf); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-missing", "2", "-o", filepath.Join(t.TempDir(), "x.txt")}, &buf); err == nil {
		t.Error("bad missing rate accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestDatagenChunkOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.chunks")
	var buf bytes.Buffer
	if err := run([]string{"-n", "1300", "-o", out, "-chunk-rows", "512"}, &buf); err != nil {
		t.Fatal(err)
	}
	cds, err := dataset.OpenChunked(out, dataset.ChunkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cds.Close()
	if cds.N() != 1300 || cds.ChunkStore().ChunkRows() != 512 {
		t.Fatalf("N=%d chunkRows=%d", cds.N(), cds.ChunkStore().ChunkRows())
	}
	// Misaligned chunk size and chunk-rows on a non-chunk path are errors.
	if err := run([]string{"-n", "10", "-o", filepath.Join(t.TempDir(), "x.chunks"), "-chunk-rows", "100"}, &buf); err == nil {
		t.Error("misaligned -chunk-rows accepted")
	}
	if err := run([]string{"-n", "10", "-o", filepath.Join(t.TempDir(), "x.txt"), "-chunk-rows", "512"}, &buf); err == nil {
		t.Error("-chunk-rows on a text output accepted")
	}
}
