// Command datagen generates the synthetic workloads used by the examples
// and benchmarks: the paper's two-attribute Gaussian mixture, the
// satellite-image-like workload, and the protein-feature workload.
//
// Usage:
//
//	datagen -workload paper -n 20000 -seed 42 -o data.txt
//	datagen -workload protein -n 5000 -missing 0.1 -o protein.bin
//	datagen -workload paper -n 200000 -o big.chunks -chunk-rows 8192
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	workload := fs.String("workload", "paper", "workload: paper, satimage or protein")
	n := fs.Int("n", 10000, "number of tuples")
	seed := fs.Uint64("seed", 42, "generator seed")
	missing := fs.Float64("missing", 0, "fraction of values to blank as missing [0,1)")
	out := fs.String("o", "", "output path (.bin for binary, .chunks for the out-of-core chunk format, anything else for text); required")
	chunkRows := fs.Int("chunk-rows", 0, "rows per chunk for a .chunks output (0 = default; must be a multiple of 256)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o output path is required")
	}
	var (
		ds  *dataset.Dataset
		err error
	)
	switch *workload {
	case "paper":
		ds, _, err = datagen.PaperMixture().Generate(*n, *seed)
	case "satimage":
		ds, _, err = datagen.SatImageMixture().Generate(*n, *seed)
	case "protein":
		ds, _, err = datagen.ProteinMixture().Generate(*n, *seed)
	default:
		return fmt.Errorf("unknown workload %q (want paper, satimage or protein)", *workload)
	}
	if err != nil {
		return err
	}
	if *missing > 0 {
		if _, err := datagen.InjectMissing(ds, *missing, *seed+1); err != nil {
			return err
		}
	}
	if strings.HasSuffix(*out, ".chunks") {
		cr := *chunkRows
		if cr == 0 {
			cr = dataset.DefaultChunkRows
		}
		if err := dataset.WriteChunked(*out, ds, cr); err != nil {
			return err
		}
	} else {
		if *chunkRows != 0 {
			return fmt.Errorf("-chunk-rows applies only to a .chunks output path")
		}
		if err := dataset.SaveFile(*out, ds); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "wrote %s: %d tuples, %d attributes (workload %s, seed %d)\n",
		*out, ds.N(), ds.NumAttrs(), *workload, *seed)
	return nil
}
