package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchOOCSmoke runs the harness on a small workload and checks the
// BENCH_ooc.json invariants CI asserts on: the bounded cache never exceeds
// its cap, residency stays a small fraction of the file, throughput is
// measured, and the trajectory matches the in-memory load bit for bit.
func TestBenchOOCSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_ooc.json")
	var buf bytes.Buffer
	err := run([]string{"-rows", "10240", "-chunk-rows", "512", "-cycles", "2", "-o", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.BitwiseMatch {
		t.Error("bounded-cache trajectory diverged from the in-memory load")
	}
	if rep.NumChunks != 20 || rep.ResidentChunks != 2 {
		t.Errorf("chunks %d resident %d, want 20/2", rep.NumChunks, rep.ResidentChunks)
	}
	if rep.Cache.HighWater > rep.ResidentChunks {
		t.Errorf("high water %d exceeds the %d-chunk cap", rep.Cache.HighWater, rep.ResidentChunks)
	}
	if rep.ResidentCeilingBytes*5 > rep.FileBytes {
		t.Errorf("resident ceiling %d is not a small fraction of the %d-byte file",
			rep.ResidentCeilingBytes, rep.FileBytes)
	}
	if rep.TrainRowsPerS <= 0 || rep.PredictRowsPerS <= 0 {
		t.Errorf("throughput missing: train %v predict %v", rep.TrainRowsPerS, rep.PredictRowsPerS)
	}
	if rep.Cache.Loads == 0 || rep.Cache.Evictions == 0 {
		t.Errorf("cache never faulted (loads %d evictions %d) — the budget is not binding",
			rep.Cache.Loads, rep.Cache.Evictions)
	}
	// Steady state must not allocate per chunk: the slot buffers are
	// reused. Allow a small constant for per-cycle bookkeeping.
	if rep.MallocsPerChunkVisit > 2 {
		t.Errorf("%.1f mallocs per chunk visit; steady state should reuse slot buffers", rep.MallocsPerChunkVisit)
	}
}

func TestBenchOOCErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-rows", "1000", "-chunk-rows", "100"}, &buf); err == nil {
		t.Error("misaligned chunk size accepted")
	}
}
