// Command benchooc measures the out-of-core chunked data plane end to end
// and emits BENCH_ooc.json, the committed baseline of the ISSUE-9
// acceptance: sustained training and prediction throughput over a chunk
// file whose resident set is capped at roughly a tenth of the data, the
// cache's observed residency ceiling, and the steady-state allocation rate
// per chunk visit. The run is self-checking — the bounded-cache trajectory
// must match an in-memory load of the same file bit for bit, or the tool
// exits nonzero.
//
//	benchooc -rows 131072 -chunk-rows 2048 -cycles 4 -o BENCH_ooc.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/autoclass"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/model"
)

// CacheReport echoes the bounded cache's counters.
type CacheReport struct {
	Hits      uint64 `json:"hits"`
	Loads     uint64 `json:"loads"`
	Evictions uint64 `json:"evictions"`
	HighWater int    `json:"high_water"`
}

// Report is the BENCH_ooc.json schema.
type Report struct {
	Goos   string `json:"goos"`
	Goarch string `json:"goarch"`

	Rows      int `json:"rows"`
	Attrs     int `json:"attrs"`
	ChunkRows int `json:"chunk_rows"`
	NumChunks int `json:"num_chunks"`
	// ResidentChunks is the cache cap: at most this many chunks in RAM.
	ResidentChunks int   `json:"resident_chunks"`
	FileBytes      int64 `json:"file_bytes"`
	// ResidentCeilingBytes is HighWater × mean chunk size — the most of
	// the dataset that was ever resident at once.
	ResidentCeilingBytes int64 `json:"resident_ceiling_bytes"`

	Cycles        int     `json:"cycles"`
	TrainSeconds  float64 `json:"train_seconds"`
	TrainRowsPerS float64 `json:"train_rows_per_sec"`
	// MallocsPerCycle and MallocsPerChunkVisit gauge the steady-state
	// allocation rate of the fused out-of-core cycle (chunk faults reuse
	// slot buffers, so both should stay near zero).
	MallocsPerCycle      float64 `json:"mallocs_per_cycle"`
	MallocsPerChunkVisit float64 `json:"mallocs_per_chunk_visit"`

	PredictSeconds  float64 `json:"predict_seconds"`
	PredictRowsPerS float64 `json:"predict_rows_per_sec"`

	Cache CacheReport `json:"cache"`
	// BitwiseMatch records that the bounded-cache trajectory and
	// prediction equal the in-memory load of the same chunk file exactly.
	BitwiseMatch bool `json:"bitwise_match"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchooc:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchooc", flag.ContinueOnError)
	rows := fs.Int("rows", 131072, "dataset rows")
	chunkRows := fs.Int("chunk-rows", 2048, "rows per chunk (multiple of 256)")
	resident := fs.Int("resident", 0, "resident-chunk cap (0 = a tenth of the chunks, at least 2)")
	cycles := fs.Int("cycles", 4, "timed EM cycles")
	startJ := fs.Int("start-j", 4, "classes")
	seed := fs.Uint64("seed", 11, "workload and init seed")
	out := fs.String("o", "BENCH_ooc.json", "output path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Build the chunk file, then drop the materialized rows: from here on
	// the data is only ever touched through the chunk plane.
	ds, _, err := datagen.PaperMixture().Generate(*rows, *seed)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "benchooc")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "rows.chunks")
	if err := dataset.WriteChunked(path, ds, *chunkRows); err != nil {
		return err
	}
	na := ds.NumAttrs()
	ds = nil
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}

	nChunks := dataset.NumChunksFor(*rows, *chunkRows)
	cap := *resident
	if cap <= 0 {
		cap = nChunks / 10
	}
	if cap < 2 {
		cap = 2
	}
	cds, err := dataset.OpenChunked(path, dataset.ChunkOptions{Mode: dataset.ChunkCached, Chunks: cap})
	if err != nil {
		return err
	}
	defer cds.Close()
	statter, ok := cds.ChunkStore().(interface{ Stats() dataset.CacheStats })
	if !ok {
		return fmt.Errorf("cached store does not report CacheStats")
	}

	cfg := autoclass.DefaultConfig()
	cfg.Parallelism = 1
	cfg.MaxCycles = *cycles + 1

	train := func(d *dataset.Dataset) (hist []float64, elapsed float64, mallocs uint64, visits uint64, err error) {
		pr := model.NewPriors(d, d.Summarize())
		cls, err := autoclass.NewClassification(d, model.DefaultSpec(d), pr, *startJ)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		eng, err := autoclass.NewEngine(d.All(), cls, cfg, nil, nil)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		if err := eng.InitRandom(*seed); err != nil {
			return nil, 0, 0, 0, err
		}
		// One warm cycle: kernels built, scratch sized, cache primed.
		cs, err := eng.BaseCycle()
		if err != nil {
			return nil, 0, 0, 0, err
		}
		hist = append(hist, cs.LogPost)
		runtime.GC()
		var m0, m1 runtime.MemStats
		var s0, s1 dataset.CacheStats
		if d == cds {
			s0 = statter.Stats()
		}
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for c := 0; c < *cycles; c++ {
			cs, err := eng.BaseCycle()
			if err != nil {
				return nil, 0, 0, 0, err
			}
			hist = append(hist, cs.LogPost)
		}
		elapsed = time.Since(t0).Seconds()
		runtime.ReadMemStats(&m1)
		if d == cds {
			s1 = statter.Stats()
			visits = (s1.Hits + s1.Loads) - (s0.Hits + s0.Loads)
		}
		return hist, elapsed, m1.Mallocs - m0.Mallocs, visits, nil
	}

	hist, trainSec, mallocs, visits, err := train(cds)
	if err != nil {
		return err
	}
	cstats := statter.Stats()

	// Predict over the same chunk plane: warm once, then time a pass.
	predSec, err := predictPass(cds, cfg, *startJ, *seed, *cycles)
	if err != nil {
		return err
	}

	// The self-check: the same file loaded fully in memory must walk the
	// identical trajectory and score rows identically, bit for bit.
	mds, err := dataset.OpenChunked(path, dataset.ChunkOptions{Mode: dataset.ChunkInMemory})
	if err != nil {
		return err
	}
	defer mds.Close()
	mhist, _, _, _, err := train(mds)
	if err != nil {
		return err
	}
	match := len(hist) == len(mhist)
	if match {
		for i := range hist {
			if hist[i] != mhist[i] {
				match = false
				break
			}
		}
	}

	rep := Report{
		Goos:                 runtime.GOOS,
		Goarch:               runtime.GOARCH,
		Rows:                 *rows,
		Attrs:                na,
		ChunkRows:            *chunkRows,
		NumChunks:            nChunks,
		ResidentChunks:       cap,
		FileBytes:            fi.Size(),
		ResidentCeilingBytes: int64(cstats.HighWater) * fi.Size() / int64(nChunks),
		Cycles:               *cycles,
		TrainSeconds:         trainSec,
		TrainRowsPerS:        float64(*rows) * float64(*cycles) / trainSec,
		MallocsPerCycle:      float64(mallocs) / float64(*cycles),
		PredictSeconds:       predSec,
		PredictRowsPerS:      float64(*rows) / predSec,
		Cache: CacheReport{
			Hits: cstats.Hits, Loads: cstats.Loads,
			Evictions: cstats.Evictions, HighWater: cstats.HighWater,
		},
		BitwiseMatch: match,
	}
	if visits > 0 {
		rep.MallocsPerChunkVisit = float64(mallocs) / float64(visits)
	}

	var ow io.Writer = w
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		ow = f
	}
	enc := json.NewEncoder(ow)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Fprintf(w, "ooc: %d rows in %d chunks, %d resident (%.1f%% of file): train %.0f rows/s, predict %.0f rows/s, %.1f mallocs/chunk, bitwise=%v\n",
		*rows, nChunks, cap, 100*float64(rep.ResidentCeilingBytes)/float64(fi.Size()),
		rep.TrainRowsPerS, rep.PredictRowsPerS, rep.MallocsPerChunkVisit, match)
	if !match {
		return fmt.Errorf("bounded-cache trajectory diverged from the in-memory load")
	}
	return nil
}

// predictPass trains a small model and times one full batch-scoring pass
// over the chunk plane with a reused Predictor (the serving hot path).
func predictPass(cds *dataset.Dataset, cfg autoclass.Config, startJ int, seed uint64, cycles int) (float64, error) {
	pr := model.NewPriors(cds, cds.Summarize())
	cls, err := autoclass.NewClassification(cds, model.DefaultSpec(cds), pr, startJ)
	if err != nil {
		return 0, err
	}
	eng, err := autoclass.NewEngine(cds.All(), cls, cfg, nil, nil)
	if err != nil {
		return 0, err
	}
	if err := eng.InitRandom(seed); err != nil {
		return 0, err
	}
	for c := 0; c < cycles; c++ {
		if _, err := eng.BaseCycle(); err != nil {
			return 0, err
		}
	}
	p, err := autoclass.NewPredictor(cls, autoclass.PredictConfig{})
	if err != nil {
		return 0, err
	}
	var pred autoclass.Prediction
	if err := p.PredictInto(cds.All(), &pred); err != nil { // warm
		return 0, err
	}
	t0 := time.Now()
	if err := p.PredictInto(cds.All(), &pred); err != nil {
		return 0, err
	}
	return time.Since(t0).Seconds(), nil
}
