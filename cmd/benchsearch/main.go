// Command benchsearch benchmarks the variant-parallel BIG_LOOP scheduler
// and writes BENCH_search.json: the committed baseline of the ISSUE-6
// search parallelization.
//
// It runs the paper's synthetic workload through the sequential search
// once, takes every try's measured phase seconds as that try's cost, and
// replays the scheduler's promise-order claim discipline over a W-worker
// pool to obtain the modeled makespan at each requested worker count. The
// modeled speedup is the headline number: CI hosts for this repo expose a
// single core, so the measured wall time of a worker pool cannot show the
// parallel win — the model (exact list scheduling of the real per-try
// costs in the real claim order) can, and stays reproducible across hosts.
// Each worker count is ALSO actually executed, and the report records that
// its result was bitwise identical to the sequential oracle — the
// scheduler's core guarantee.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/autoclass"
	"repro/internal/datagen"
	"repro/internal/model"
)

// WorkerResult is the outcome at one worker count.
type WorkerResult struct {
	Workers int `json:"workers"`
	// ModeledMakespanSeconds is the pool makespan of the measured per-try
	// costs under the scheduler's promise-order claim discipline.
	ModeledMakespanSeconds float64 `json:"modeled_makespan_seconds"`
	// ModeledSpeedup is the 1-worker modeled makespan over this one.
	ModeledSpeedup float64 `json:"modeled_speedup"`
	// MeasuredWallSeconds is the real elapsed time of the actual run at
	// this worker count on this host (see HostCores).
	MeasuredWallSeconds float64 `json:"measured_wall_seconds"`
	// BitwiseIdentical records that the run's Tries, duplicate marks and
	// best-classification checkpoint bytes equal the sequential run's.
	BitwiseIdentical bool `json:"bitwise_identical"`
}

// Report is the BENCH_search.json schema.
type Report struct {
	N          int     `json:"n"`
	Seed       uint64  `json:"seed"`
	StartJList []int   `json:"start_j_list"`
	Tries      int     `json:"tries"`
	MaxCycles  int     `json:"max_cycles"`
	HostCores  int     `json:"host_cores"`
	GoMaxProcs int     `json:"gomaxprocs"`
	// TrySeconds is every try's measured phase-time total, in schedule
	// order — the cost vector the makespan model schedules.
	TrySeconds            []float64      `json:"try_seconds"`
	SequentialWallSeconds float64        `json:"sequential_wall_seconds"`
	Workers               []WorkerResult `json:"workers"`
	Note                  string         `json:"note"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsearch:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchsearch", flag.ContinueOnError)
	n := fs.Int("n", 4000, "paper-workload tuples")
	seed := fs.Uint64("seed", 1, "search seed")
	startJ := fs.String("start-j", "2,4,8,16,24,50,64", "comma-separated start_j_list")
	tries := fs.Int("tries", 2, "random restarts per start J")
	maxCycles := fs.Int("max-cycles", 50, "base_cycle cap per try")
	workersList := fs.String("workers", "1,2,4,8", "comma-separated worker counts to model and run")
	out := fs.String("o", "BENCH_search.json", "output path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := autoclass.DefaultSearchConfig()
	cfg.Seed = *seed
	cfg.Tries = *tries
	cfg.EM.MaxCycles = *maxCycles
	var err error
	if cfg.StartJList, err = parseInts(*startJ); err != nil {
		return fmt.Errorf("-start-j: %w", err)
	}
	counts, err := parseInts(*workersList)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}

	ds, err := datagen.Paper(*n, 42)
	if err != nil {
		return err
	}
	spec := model.DefaultSpec(ds)
	pr := model.NewPriors(ds, ds.Summarize())
	view := ds.All()
	// The same native trial the sequential engine runs, with the per-try
	// EM phase seconds recorded by seed. Safe for concurrent use: every
	// call builds its own classification and engine over the shared view.
	var mu sync.Mutex
	tryCost := map[uint64]float64{}
	runner := func(startJ int, seed uint64) (*autoclass.Classification, autoclass.EMResult, error) {
		cls, err := autoclass.NewClassification(ds, spec, pr, startJ)
		if err != nil {
			return nil, autoclass.EMResult{}, err
		}
		eng, err := autoclass.NewEngine(view, cls, cfg.EM, nil, nil)
		if err != nil {
			return nil, autoclass.EMResult{}, err
		}
		if err := eng.InitRandom(seed); err != nil {
			return nil, autoclass.EMResult{}, err
		}
		em, err := eng.Run()
		if err != nil {
			return nil, autoclass.EMResult{}, err
		}
		mu.Lock()
		tryCost[seed] = em.WtsSeconds + em.ParamsSeconds + em.ApproxSeconds + em.InitSeconds
		mu.Unlock()
		return cls, em, nil
	}

	fmt.Fprintf(w, "benchsearch: n=%d start_j_list=%v tries=%d max_cycles=%d (%d variants)\n",
		*n, cfg.StartJList, cfg.Tries, cfg.EM.MaxCycles, len(cfg.Variants()))
	start := time.Now()
	ref, err := autoclass.SearchWith(runner, cfg)
	if err != nil {
		return err
	}
	seqWall := time.Since(start).Seconds()
	refBest, err := checkpointBytes(ref.Best)
	if err != nil {
		return err
	}

	variants := cfg.Variants()
	costs := make([]float64, len(variants))
	for i, v := range variants {
		costs[i] = tryCost[v.Seed]
	}
	order := claimOrder(cfg)
	base := makespan(costs, order, 1)

	rep := &Report{
		N: *n, Seed: *seed, StartJList: cfg.StartJList, Tries: cfg.Tries,
		MaxCycles: cfg.EM.MaxCycles, HostCores: runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0), TrySeconds: costs,
		SequentialWallSeconds: seqWall,
		Note: "modeled_speedup is the headline: exact list scheduling of the " +
			"measured per-try costs in the scheduler's promise claim order; " +
			"measured_wall_seconds depends on host_cores and is reported for " +
			"transparency only",
	}
	for _, wc := range counts {
		if wc < 1 {
			return fmt.Errorf("worker count %d < 1", wc)
		}
		ms := makespan(costs, order, wc)
		pcfg := cfg
		pcfg.SearchParallelism = wc
		runStart := time.Now()
		res, err := autoclass.SearchWith(runner, pcfg)
		if err != nil {
			return err
		}
		wall := time.Since(runStart).Seconds()
		resBest, err := checkpointBytes(res.Best)
		if err != nil {
			return err
		}
		wr := WorkerResult{
			Workers:                wc,
			ModeledMakespanSeconds: ms,
			ModeledSpeedup:         base / ms,
			MeasuredWallSeconds:    wall,
			BitwiseIdentical: sameTries(res.Tries, ref.Tries) &&
				res.BestTry == ref.BestTry && bytes.Equal(resBest, refBest),
		}
		rep.Workers = append(rep.Workers, wr)
		fmt.Fprintf(w, "workers=%d modeled makespan %.3fs (speedup %.2fx) wall %.3fs identical=%v\n",
			wc, wr.ModeledMakespanSeconds, wr.ModeledSpeedup, wr.MeasuredWallSeconds, wr.BitwiseIdentical)
	}

	var enc *json.Encoder
	if *out == "-" {
		enc = json.NewEncoder(w)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", " ")
	return enc.Encode(rep)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// claimOrder replays the scheduler's promise heuristic: smaller start J
// first, earlier tries first. The returned slice holds schedule indices.
func claimOrder(cfg autoclass.SearchConfig) []int {
	vars := cfg.Variants()
	order := make([]int, len(vars))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := vars[order[a]], vars[order[b]]
		if va.StartJ != vb.StartJ {
			return va.StartJ < vb.StartJ
		}
		return va.Try < vb.Try
	})
	return order
}

// makespan list-schedules the per-try costs in claim order onto a pool of
// `workers`: each claimed try goes to the earliest-free worker, exactly as
// the live pool claims the next variant when a worker finishes.
func makespan(costs []float64, order []int, workers int) float64 {
	free := make([]float64, workers)
	for _, idx := range order {
		// Earliest-free worker claims next.
		w := 0
		for i := 1; i < workers; i++ {
			if free[i] < free[w] {
				w = i
			}
		}
		free[w] += costs[idx]
	}
	var end float64
	for _, t := range free {
		if t > end {
			end = t
		}
	}
	return end
}

func checkpointBytes(cls *autoclass.Classification) ([]byte, error) {
	var buf bytes.Buffer
	if err := autoclass.SaveCheckpoint(&buf, cls); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func sameTries(a, b []autoclass.TryResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
