package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/autoclass"
)

func TestBenchSearchReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{
		"-n", "300", "-start-j", "2,4,6", "-tries", "2",
		"-max-cycles", "10", "-workers", "1,2,6", "-o", out,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.N != 300 || rep.HostCores < 1 || rep.SequentialWallSeconds <= 0 {
		t.Fatalf("bad header: %+v", rep)
	}
	if len(rep.TrySeconds) != 6 {
		t.Fatalf("%d try costs for 6 variants", len(rep.TrySeconds))
	}
	for _, c := range rep.TrySeconds {
		if c <= 0 {
			t.Fatalf("non-positive try cost in %v", rep.TrySeconds)
		}
	}
	if len(rep.Workers) != 3 {
		t.Fatalf("%d worker entries", len(rep.Workers))
	}
	for _, wr := range rep.Workers {
		if !wr.BitwiseIdentical {
			t.Errorf("workers=%d diverged from the sequential oracle", wr.Workers)
		}
		if wr.ModeledMakespanSeconds <= 0 || wr.ModeledSpeedup <= 0 {
			t.Errorf("workers=%d: empty model %+v", wr.Workers, wr)
		}
	}
	if rep.Workers[0].Workers != 1 || rep.Workers[0].ModeledSpeedup != 1 {
		t.Errorf("1-worker speedup must be exactly 1: %+v", rep.Workers[0])
	}
	// With 6 equal-ish tries on 6 workers, the modeled makespan is the
	// longest single try — strictly better than 2 workers.
	if rep.Workers[2].ModeledSpeedup <= rep.Workers[1].ModeledSpeedup {
		t.Errorf("speedup not increasing with workers: %+v", rep.Workers)
	}
}

func TestMakespanModel(t *testing.T) {
	costs := []float64{4, 1, 1, 1, 1}
	order := []int{0, 1, 2, 3, 4}
	if got := makespan(costs, order, 1); got != 8 {
		t.Errorf("1 worker: %v", got)
	}
	// Two workers: w0 takes the 4s try, w1 drains the four 1s tries.
	if got := makespan(costs, order, 2); got != 4 {
		t.Errorf("2 workers: %v", got)
	}
	if got := makespan(costs, order, 8); got != 4 {
		t.Errorf("8 workers: %v", got)
	}
}

func TestClaimOrderPromiseHeuristic(t *testing.T) {
	cfg := autoclass.DefaultSearchConfig()
	cfg.StartJList = []int{8, 2, 4}
	cfg.Tries = 2
	vars := cfg.Variants()
	var claimed []struct{ j, try int }
	for _, idx := range claimOrder(cfg) {
		claimed = append(claimed, struct{ j, try int }{vars[idx].StartJ, vars[idx].Try})
	}
	want := []struct{ j, try int }{{2, 0}, {2, 1}, {4, 0}, {4, 1}, {8, 0}, {8, 1}}
	for i := range want {
		if claimed[i] != want[i] {
			t.Fatalf("claim order %v, want %v", claimed, want)
		}
	}
}
