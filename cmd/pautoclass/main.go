// Command pautoclass clusters a dataset with the P-AutoClass engine — the
// full BIG_LOOP model search over a list of starting class counts, run
// sequentially or across P in-process ranks connected by the message-
// passing substrate, optionally under the simulated Meiko CS-2 clock.
//
// The command is a pure consumer of the repro facade: every capability is
// reached through repro.Run's options (and repro.LoadCheckpoint /
// repro.Predict for the no-search classify path).
//
// Usage:
//
//	pautoclass -data data.txt -procs 8 -start-j 2,4,8 -report
//	pautoclass -data big.bin -procs 10 -machine meiko -strategy full
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/logx"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pautoclass:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pautoclass", flag.ContinueOnError)
	dataPath := fs.String("data", "", "dataset path (required unless -chunked is given)")
	chunkedPath := fs.String("chunked", "", "train out of core from this chunk file instead of -data; the resident set is bounded by -memory-budget")
	memoryBudget := fs.String("memory-budget", "", "with -chunked: cap resident dataset bytes (e.g. 64MiB, 1GiB, or a plain byte count); empty memory-maps the file")
	procs := fs.Int("procs", 1, "number of ranks")
	startJ := fs.String("start-j", "2,4,8,16,24,50,64", "comma-separated start_j_list")
	tries := fs.Int("tries", 2, "random restarts per start J")
	maxCycles := fs.Int("max-cycles", 200, "base_cycle cap per try")
	parallelism := fs.Int("parallelism", 0, "intra-rank worker goroutines per base_cycle (0 = sequential, -1 = GOMAXPROCS)")
	searchParallelism := fs.Int("search-parallelism", 0, "concurrent BIG_LOOP variants (0/1 = one try at a time, -1 = GOMAXPROCS); with -procs P the rank budget splits into this many groups (P must be divisible); bitwise identical to the sequential order for every value")
	seed := fs.Uint64("seed", 1, "search seed")
	syncEvery := fs.Int("sync-every", 1, "bounded-staleness schedule for -procs > 1: local EM cycles per global synchronization (1 = fully synchronous, the paper's path)")
	syncDriftTol := fs.Float64("sync-drift-tol", 0.05, "with -sync-every > 1: relative log-likelihood drift that forces an early synchronization (0 disables the bound)")
	strategy := fs.String("strategy", "full", "parallel strategy: full or wtsonly")
	granularity := fs.String("granularity", "perterm", "statistics exchange: perterm or packed")
	kernels := fs.String("kernels", "blocked", "term evaluation path: blocked (columnar kernels) or reference (per-row bitwise oracle)")
	machine := fs.String("machine", "none", "virtual machine model: none, meiko or pentium")
	correlated := fs.Bool("correlated", false, "model real attributes with a joint covariance term")
	models := fs.Bool("models", false, "run the model-level search over every applicable model form (sequential only)")
	resume := fs.String("resume", "", "search-state file for checkpointed/resumable search (sequential or parallel)")
	checkpointEvery := fs.Int("checkpoint-every", 8, "with -resume and -procs > 1: cycles between mid-try snapshots (0 = try boundaries only)")
	opTimeout := fs.Duration("op-timeout", 0, "per-operation transport deadline; a stalled rank errors out instead of hanging (0 = none)")
	sendRetries := fs.Int("send-retries", 1, "max attempts per send when the transport reports a transient fault (1 = no retry)")
	cases := fs.String("cases", "", "write AutoClass-style case assignments of the best classification to this file")
	classify := fs.String("classify", "", "skip the search: load this classification checkpoint and classify the dataset")
	report := fs.Bool("report", false, "print the full class report")
	checkpoint := fs.String("checkpoint", "", "write the best classification to this JSON file")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event file (load in Perfetto) of the run to this path")
	eventsOut := fs.String("events-out", "", "write the raw trace events as JSON lines to this path")
	metricsOut := fs.String("metrics-out", "", "write per-rank metrics and the comm/compute breakdown as JSON to this path")
	phaseProfile := fs.Bool("phase-profile", false, "print the per-phase wall-time table (update_wts / update_parameters / update_approximations)")
	pprofPrefix := fs.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof runtime profiles")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	logLevel := fs.String("log-level", "warn", "log level: debug, info, warn or error")
	progressMode := fs.String("progress", "auto", "live progress line on stderr: auto (when stderr is a terminal), on or off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logx.New(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	showProgress := false
	switch *progressMode {
	case "on":
		showProgress = true
	case "off":
	case "auto":
		showProgress = isTerminal(os.Stderr)
	default:
		return fmt.Errorf("unknown -progress mode %q (want auto, on or off)", *progressMode)
	}
	var ds *repro.Dataset
	switch {
	case *chunkedPath != "" && *dataPath != "":
		return fmt.Errorf("-chunked replaces -data; give one or the other")
	case *chunkedPath != "":
		copts := repro.ChunkOptions{}
		if *memoryBudget != "" {
			budget, err := parseBytes(*memoryBudget)
			if err != nil {
				return fmt.Errorf("bad -memory-budget: %v", err)
			}
			copts.Mode = repro.ChunkCached
			copts.MemoryBudget = budget
		}
		cds, err := repro.OpenChunkedDataset(*chunkedPath, copts)
		if err != nil {
			return err
		}
		defer cds.Close()
		ds = cds
	case *dataPath == "":
		return fmt.Errorf("-data is required")
	default:
		var err error
		if ds, err = repro.LoadDataset(*dataPath); err != nil {
			return err
		}
	}
	if *memoryBudget != "" && *chunkedPath == "" {
		return fmt.Errorf("-memory-budget needs -chunked")
	}
	cfg := repro.DefaultSearchConfig()
	cfg.Seed = *seed
	cfg.Tries = *tries
	cfg.EM.MaxCycles = *maxCycles
	cfg.EM.Parallelism = *parallelism
	cfg.EM.SyncEvery = *syncEvery
	cfg.EM.SyncDriftTol = *syncDriftTol
	cfg.SearchParallelism = *searchParallelism
	cfg.StartJList = nil
	for _, tok := range strings.Split(*startJ, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("bad -start-j entry %q: %v", tok, err)
		}
		cfg.StartJList = append(cfg.StartJList, v)
	}
	var strat repro.Strategy
	switch *strategy {
	case "full":
		strat = repro.Full
	case "wtsonly":
		strat = repro.WtsOnly
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	switch *granularity {
	case "perterm":
		cfg.EM.Granularity = repro.PerTerm
	case "packed":
		cfg.EM.Granularity = repro.Packed
	default:
		return fmt.Errorf("unknown granularity %q", *granularity)
	}
	switch *kernels {
	case "blocked":
		cfg.EM.Kernels = repro.Blocked
	case "reference":
		cfg.EM.Kernels = repro.Reference
	default:
		return fmt.Errorf("unknown kernels %q", *kernels)
	}
	var mach *repro.Machine
	switch *machine {
	case "none":
	case "meiko":
		m := repro.MeikoCS2()
		mach = &m
	case "pentium":
		m := repro.PentiumPC()
		mach = &m
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}

	if *pprofPrefix != "" {
		cpuF, err := os.Create(*pprofPrefix + ".cpu.pprof")
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			cpuF.Close()
			heapF, err := os.Create(*pprofPrefix + ".heap.pprof")
			if err != nil {
				fmt.Fprintln(os.Stderr, "pautoclass: heap profile:", err)
				return
			}
			if err := pprof.WriteHeapProfile(heapF); err != nil {
				fmt.Fprintln(os.Stderr, "pautoclass: heap profile:", err)
			}
			heapF.Close()
		}()
	}

	if *classify != "" {
		return runClassify(w, ds, *classify, *cases)
	}
	if *models {
		return runModelSearch(w, ds, cfg, *report, *checkpoint)
	}
	if *correlated {
		if *procs > 1 {
			return fmt.Errorf("-correlated runs on the sequential engine; drop -procs")
		}
		if mach != nil {
			return fmt.Errorf("-correlated runs on the sequential engine; drop -machine")
		}
	}
	if *resume != "" && *procs == 1 {
		return runResumable(w, ds, cfg, *correlated, *resume, *report, *checkpoint, *cases)
	}

	fmt.Fprintf(w, "dataset %s: %d tuples, %d attributes\n", ds.Name, ds.N(), ds.NumAttrs())
	fmt.Fprintf(w, "search: start_j_list=%v tries=%d procs=%d strategy=%s\n",
		cfg.StartJList, cfg.Tries, *procs, strat)
	if *resume != "" {
		fmt.Fprintf(w, "resumable parallel search: state in %s, snapshot every %d cycles\n", *resume, *checkpointEvery)
	}

	// One observability session covers every in-process rank. Created only
	// when an output was requested so the default path stays on the nil
	// (no-op) hooks.
	var obsRun *repro.RunObserver
	if *traceOut != "" || *eventsOut != "" || *metricsOut != "" {
		obsRun = repro.NewRunObserver(*procs)
		if mach != nil {
			obsRun.SetMachineLabel(mach.Name)
		}
	}
	var profile *repro.Profile
	if *phaseProfile {
		profile = repro.NewProfile()
	}

	// The search observer fans out to the live progress line and, when an
	// observability session exists, rank 0's recorder (so -metrics-out
	// includes the search.* metrics). Events arrive once regardless of
	// -procs; the trajectory is bitwise identical either way.
	var printer *progressPrinter
	var searchObs []repro.SearchObserver
	if showProgress {
		printer = newProgressPrinter(os.Stderr)
		searchObs = append(searchObs, printer)
	}
	if obsRun != nil {
		searchObs = append(searchObs, obsRun.Rank(0))
	}

	opts := []repro.Option{repro.WithSearchConfig(cfg)}
	if *correlated {
		// Sequential engine (validated above); everything else still wires
		// through the same options.
		opts = append(opts, repro.WithCorrelated())
	} else {
		opts = append(opts, repro.WithParallel(repro.ParallelConfig{
			Procs:       *procs,
			Strategy:    strat,
			Machine:     mach,
			OpDeadline:  *opTimeout,
			SendRetries: *sendRetries,
		}))
	}
	if obsRun != nil {
		opts = append(opts, repro.WithObserver(obsRun))
	}
	if profile != nil {
		opts = append(opts, repro.WithProfile(profile))
	}
	if *resume != "" {
		opts = append(opts, repro.WithCheckpoint(*resume, *checkpointEvery))
	}
	switch len(searchObs) {
	case 0:
	case 1:
		opts = append(opts, repro.WithSearchObserver(searchObs[0]))
	default:
		opts = append(opts, repro.WithSearchObserver(multiSearchObserver(searchObs)))
	}

	slog.Debug("search starting", "dataset", ds.Name, "tuples", ds.N(),
		"start_j_list", fmt.Sprint(cfg.StartJList), "tries", cfg.Tries, "procs", *procs)
	start := time.Now()
	r, err := repro.Run(ds, opts...)
	if printer != nil {
		printer.finish()
	}
	if err != nil {
		return err
	}
	best := r.Search
	wall := time.Since(start).Seconds()

	fmt.Fprintf(w, "\nbest classification: %d classes (start J %d, seed %d)\n",
		best.Best.J(), best.BestTry.StartJ, best.BestTry.Seed)
	fmt.Fprintf(w, "log likelihood=%.4f log posterior=%.4f score=%.4f cycles=%d converged=%v\n",
		best.Best.LogLik, best.Best.LogPost, best.Best.Score(), best.BestTry.Cycles, best.BestTry.Converged)
	dups := 0
	for _, tr := range best.Tries {
		if tr.Duplicate {
			dups++
		}
	}
	fmt.Fprintf(w, "tries: %d total, %d duplicates eliminated\n", len(best.Tries), dups)
	fmt.Fprintf(w, "wall time: %.2fs", wall)
	if mach != nil {
		fmt.Fprintf(w, "  virtual time on %s: %s", mach.Name, repro.FormatHMS(r.Stats.VirtualSeconds))
	}
	fmt.Fprintln(w)
	if profile != nil {
		fmt.Fprintln(w)
		fmt.Fprint(w, profile.Table())
	}
	if obsRun != nil {
		b := obsRun.Breakdown()
		fmt.Fprintln(w)
		fmt.Fprint(w, b.Table())
		if *traceOut != "" {
			if err := writeTo(*traceOut, obsRun.WriteChromeTrace); err != nil {
				return err
			}
			fmt.Fprintf(w, "chrome trace written to %s\n", *traceOut)
		}
		if *eventsOut != "" {
			if err := writeTo(*eventsOut, obsRun.WriteEventsJSONL); err != nil {
				return err
			}
			fmt.Fprintf(w, "trace events written to %s\n", *eventsOut)
		}
		if *metricsOut != "" {
			if err := writeTo(*metricsOut, obsRun.WriteMetricsJSON); err != nil {
				return err
			}
			fmt.Fprintf(w, "metrics written to %s\n", *metricsOut)
		}
	}
	if *report {
		fmt.Fprintln(w)
		if _, err := repro.BuildReport(best.Best, ds).WriteTo(w); err != nil {
			return err
		}
	}
	if *checkpoint != "" {
		if err := repro.SaveCheckpoint(*checkpoint, best.Best); err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint written to %s\n", *checkpoint)
	}
	if *cases != "" {
		if err := writeCasesFile(*cases, best.Best, ds); err != nil {
			return err
		}
		fmt.Fprintf(w, "case assignments written to %s\n", *cases)
	}
	return nil
}

// parseBytes parses a byte count with an optional KB/MB/GB/KiB/MiB/GiB
// suffix (decimal and binary units respectively; case-insensitive).
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1000}, {"MB", 1000 * 1000}, {"GB", 1000 * 1000 * 1000},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, u.suffix) {
			mult = u.mult
			t = strings.TrimSpace(t[:len(t)-len(u.suffix)])
			break
		}
	}
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a byte count", s)
	}
	if v <= 0 {
		return 0, fmt.Errorf("byte count %q must be positive", s)
	}
	return v * mult, nil
}

// writeTo creates path and streams write's output into it.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCasesFile writes the case assignments of cls over ds to path.
func writeCasesFile(path string, cls *repro.Classification, ds *repro.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := repro.WriteCases(f, cls, ds, 0.1); err != nil {
		return err
	}
	return f.Close()
}

// runClassify loads a checkpoint and classifies the dataset without
// searching — the batch inference path.
func runClassify(w io.Writer, ds *repro.Dataset, checkpointPath, casesPath string) error {
	cls, err := repro.LoadCheckpoint(checkpointPath, ds)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "classifying %d tuples with %d classes from %s\n", ds.N(), cls.J(), checkpointPath)
	sizes := repro.ClassSizes(cls, ds)
	fmt.Fprintf(w, "class sizes: %v\n", sizes)
	fmt.Fprintf(w, "mean max membership: %.4f\n", repro.MeanMaxMembership(cls, ds))
	if casesPath != "" {
		if err := writeCasesFile(casesPath, cls, ds); err != nil {
			return err
		}
		fmt.Fprintf(w, "case assignments written to %s\n", casesPath)
		return nil
	}
	return repro.WriteCases(w, cls, ds, 0.1)
}

// runResumable runs the checkpointed/resumable sequential search.
func runResumable(w io.Writer, ds *repro.Dataset, cfg repro.SearchConfig, correlated bool,
	statePath string, report bool, checkpoint, casesPath string) error {
	fmt.Fprintf(w, "dataset %s: %d tuples — resumable search, state in %s\n", ds.Name, ds.N(), statePath)
	opts := []repro.Option{repro.WithSearchConfig(cfg), repro.WithCheckpoint(statePath, 0)}
	if correlated {
		opts = append(opts, repro.WithCorrelated())
	}
	r, err := repro.Run(ds, opts...)
	if err != nil {
		return err
	}
	res := r.Search
	fmt.Fprintf(w, "best classification: %d classes, score %.4f (%d tries recorded)\n",
		res.Best.J(), res.Best.Score(), len(res.Tries))
	if report {
		if _, err := repro.BuildReport(res.Best, ds).WriteTo(w); err != nil {
			return err
		}
	}
	if checkpoint != "" {
		if err := repro.SaveCheckpoint(checkpoint, res.Best); err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint written to %s\n", checkpoint)
	}
	if casesPath != "" {
		if err := writeCasesFile(casesPath, res.Best, ds); err != nil {
			return err
		}
		fmt.Fprintf(w, "case assignments written to %s\n", casesPath)
	}
	return nil
}

// runModelSearch executes the two-level search (model forms × class counts)
// and reports every form's outcome plus the overall best.
func runModelSearch(w io.Writer, ds *repro.Dataset, cfg repro.SearchConfig, report bool, checkpoint string) error {
	fmt.Fprintf(w, "dataset %s: %d tuples, %d attributes\n", ds.Name, ds.N(), ds.NumAttrs())
	fmt.Fprintf(w, "model-level search over the standard model forms, start_j_list=%v\n\n", cfg.StartJList)
	r, err := repro.Run(ds, repro.WithSearchConfig(cfg), repro.WithModelSearch())
	if err != nil {
		return err
	}
	res := r.Models
	for _, ps := range res.PerSpec {
		fmt.Fprintf(w, "model %-12s: %2d classes  score %.4f  logpost %.4f\n",
			ps.Name, ps.Result.Best.J(), ps.Result.Best.Score(), ps.Result.Best.LogPost)
	}
	fmt.Fprintf(w, "\nbest model form: %s (%d classes)\n", res.BestSpec, res.Best.J())
	if report {
		fmt.Fprintln(w)
		if _, err := repro.BuildReport(res.Best, ds).WriteTo(w); err != nil {
			return err
		}
	}
	if checkpoint != "" {
		if err := repro.SaveCheckpoint(checkpoint, res.Best); err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint written to %s\n", checkpoint)
	}
	return nil
}
