package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/autoclass"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func writeDataset(t *testing.T, n int) string {
	t.Helper()
	ds, err := datagen.Paper(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.txt")
	if err := dataset.SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLISequentialRun(t *testing.T) {
	path := writeDataset(t, 500)
	var buf bytes.Buffer
	err := run([]string{"-data", path, "-start-j", "2,5", "-tries", "1", "-max-cycles", "30"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"best classification", "log likelihood", "tries:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIParallelWithMachineAndReport(t *testing.T) {
	path := writeDataset(t, 800)
	var buf bytes.Buffer
	err := run([]string{
		"-data", path, "-procs", "4", "-start-j", "5", "-tries", "1",
		"-max-cycles", "30", "-machine", "meiko", "-report",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"virtual time on Meiko", "AutoClass classification report", "influence:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCLISearchParallelism: -search-parallelism splits the rank budget into
// variant groups and the printed summary stays identical to the plain run.
func TestCLISearchParallelism(t *testing.T) {
	path := writeDataset(t, 500)
	base := []string{"-data", path, "-start-j", "2,5", "-tries", "1", "-max-cycles", "30"}
	var ref bytes.Buffer
	if err := run(append([]string{}, base...), &ref); err != nil {
		t.Fatal(err)
	}
	var par bytes.Buffer
	if err := run(append([]string{"-procs", "2", "-search-parallelism", "2"}, base...), &par); err != nil {
		t.Fatal(err)
	}
	want := bestLine(t, ref.String())
	if got := bestLine(t, par.String()); got != want {
		t.Fatalf("variant-parallel best %q, sequential best %q", got, want)
	}
	// An indivisible split is refused with the facade's error.
	err := run(append([]string{"-procs", "3", "-search-parallelism", "2"}, base...), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "divisible") {
		t.Fatalf("indivisible budget: %v", err)
	}
}

func bestLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "best classification") {
			return line
		}
	}
	t.Fatalf("no best-classification line in:\n%s", out)
	return ""
}

func TestCLIWtsOnlyAndPacked(t *testing.T) {
	path := writeDataset(t, 300)
	for _, args := range [][]string{
		{"-data", path, "-procs", "2", "-start-j", "3", "-tries", "1", "-max-cycles", "15", "-strategy", "wtsonly"},
		{"-data", path, "-procs", "2", "-start-j", "3", "-tries", "1", "-max-cycles", "15", "-granularity", "packed"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestCLICorrelatedSpec(t *testing.T) {
	path := writeDataset(t, 400)
	var buf bytes.Buffer
	err := run([]string{"-data", path, "-start-j", "3", "-tries", "1", "-max-cycles", "20", "-correlated"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCLICheckpointOutput(t *testing.T) {
	path := writeDataset(t, 300)
	ck := filepath.Join(t.TempDir(), "best.json")
	var buf bytes.Buffer
	err := run([]string{"-data", path, "-start-j", "3", "-tries", "1", "-max-cycles", "15", "-checkpoint", ck}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "checkpoint written") {
		t.Fatalf("no checkpoint message:\n%s", buf.String())
	}
	ds, err := dataset.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := autoclass.LoadCheckpointFile(ck, ds); err != nil {
		t.Fatalf("checkpoint unreadable: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	path := writeDataset(t, 50)
	var buf bytes.Buffer
	cases := map[string][]string{
		"no-data":         {},
		"missing-file":    {"-data", "/nonexistent/x.txt"},
		"bad-strategy":    {"-data", path, "-strategy", "nope"},
		"bad-granularity": {"-data", path, "-granularity", "nope"},
		"bad-machine":     {"-data", path, "-machine", "cray"},
		"bad-startj":      {"-data", path, "-start-j", "2,x"},
		"bad-flag":        {"-zzz"},
	}
	for name, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("case %q accepted", name)
		}
	}
}

func TestCLIModelSearch(t *testing.T) {
	path := writeDataset(t, 400)
	var buf bytes.Buffer
	err := run([]string{"-data", path, "-start-j", "3", "-tries", "1", "-max-cycles", "20", "-models"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"model-level search", "independent", "correlated", "best model form"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIResumeAndCases(t *testing.T) {
	path := writeDataset(t, 400)
	dir := t.TempDir()
	state := filepath.Join(dir, "state.json")
	casesPath := filepath.Join(dir, "cases.txt")
	args := []string{"-data", path, "-start-j", "3,5", "-tries", "1", "-max-cycles", "20",
		"-resume", state, "-cases", casesPath}
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resumable search") {
		t.Fatalf("output:\n%s", buf.String())
	}
	// Second run resumes instantly from the complete state.
	buf.Reset()
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(casesPath); err != nil {
		t.Fatalf("cases file: %v", err)
	}
}

func TestCLIParallelResume(t *testing.T) {
	path := writeDataset(t, 400)
	dir := t.TempDir()
	state := filepath.Join(dir, "state.json")
	ck := filepath.Join(dir, "best.json")
	args := []string{"-data", path, "-procs", "3", "-start-j", "3,5", "-tries", "1",
		"-max-cycles", "20", "-resume", state, "-checkpoint-every", "4",
		"-op-timeout", "30s", "-send-retries", "3", "-checkpoint", ck}
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resumable parallel search") {
		t.Fatalf("output:\n%s", buf.String())
	}
	first, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("search state file: %v", err)
	}
	// Relaunching against the finished state replays nothing and writes the
	// bitwise-identical best classification.
	buf.Reset()
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("relaunched search wrote a different best classification")
	}
	// The parallel checkpointed path supports only the full strategy.
	if err := run([]string{"-data", path, "-procs", "2", "-start-j", "3", "-tries", "1",
		"-resume", state, "-strategy", "wtsonly"}, &buf); err == nil {
		t.Fatal("-resume with -strategy wtsonly accepted")
	}
}

func TestCLIClassifyMode(t *testing.T) {
	path := writeDataset(t, 300)
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.json")
	var buf bytes.Buffer
	if err := run([]string{"-data", path, "-start-j", "3", "-tries", "1",
		"-max-cycles", "15", "-checkpoint", ck}, &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-data", path, "-classify", ck}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"classifying 300 tuples", "class sizes", "# case assignments"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Classify with cases file output.
	casesPath := filepath.Join(dir, "c.txt")
	buf.Reset()
	if err := run([]string{"-data", path, "-classify", ck, "-cases", casesPath}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(casesPath); err != nil {
		t.Fatalf("cases file: %v", err)
	}
	// Bad checkpoint path errors.
	if err := run([]string{"-data", path, "-classify", "/nonexistent.json"}, &buf); err == nil {
		t.Fatal("bad checkpoint accepted")
	}
}

// writeChunkedDataset writes the paper workload as a chunk file.
func writeChunkedDataset(t *testing.T, n, chunkRows int) string {
	t.Helper()
	ds, err := datagen.Paper(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.chunks")
	if err := dataset.WriteChunked(path, ds, chunkRows); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCLIChunkedRun: -chunked trains out of core from a chunk file; the
// printed summary matches a run over the same rows loaded in memory, and
// -memory-budget bounds residency without changing it.
func TestCLIChunkedRun(t *testing.T) {
	dataPath := writeDataset(t, 1024)
	chunkPath := writeChunkedDataset(t, 1024, 256)
	common := []string{"-start-j", "2,5", "-tries", "1", "-max-cycles", "30", "-procs", "2"}
	var want bytes.Buffer
	if err := run(append([]string{"-data", dataPath}, common...), &want); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-chunked", chunkPath},
		{"-chunked", chunkPath, "-memory-budget", "64KiB"},
	} {
		var got bytes.Buffer
		if err := run(append(args, common...), &got); err != nil {
			t.Fatal(err)
		}
		// Strip the wall-time line; everything else must match verbatim.
		trim := func(s string) string {
			var keep []string
			for _, ln := range strings.Split(s, "\n") {
				if strings.HasPrefix(ln, "wall time:") {
					continue
				}
				keep = append(keep, ln)
			}
			return strings.Join(keep, "\n")
		}
		if trim(got.String()) != trim(want.String()) {
			t.Fatalf("chunked output differs:\n--- got ---\n%s\n--- want ---\n%s", got.String(), want.String())
		}
	}
}

func TestCLIChunkedErrors(t *testing.T) {
	dataPath := writeDataset(t, 50)
	chunkPath := writeChunkedDataset(t, 512, 256)
	var buf bytes.Buffer
	cases := map[string][]string{
		"chunked-and-data":       {"-data", dataPath, "-chunked", chunkPath},
		"budget-without-chunked": {"-data", dataPath, "-memory-budget", "1MiB"},
		"bad-budget":             {"-chunked", chunkPath, "-memory-budget", "lots"},
		"negative-budget":        {"-chunked", chunkPath, "-memory-budget", "-3MiB"},
		"chunked-wtsonly": {"-chunked", chunkPath, "-procs", "2", "-strategy", "wtsonly",
			"-start-j", "2", "-tries", "1", "-max-cycles", "5"},
		"chunked-reference": {"-chunked", chunkPath, "-kernels", "reference",
			"-start-j", "2", "-tries", "1", "-max-cycles", "5"},
	}
	for name, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("case %q accepted", name)
		}
	}
}

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"123":    123,
		"64KiB":  64 << 10,
		"2MiB":   2 << 20,
		"1GiB":   1 << 30,
		"5kb":    5000,
		"3 MB":   3_000_000,
		"1gb":    1_000_000_000,
		"1024B":  1024,
		" 7MiB ": 7 << 20,
	}
	for in, want := range good {
		got, err := parseBytes(in)
		if err != nil {
			t.Errorf("parseBytes(%q): %v", in, err)
		} else if got != want {
			t.Errorf("parseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, in := range []string{"", "x", "12XB", "-5", "0"} {
		if _, err := parseBytes(in); err == nil {
			t.Errorf("parseBytes(%q) accepted", in)
		}
	}
}
