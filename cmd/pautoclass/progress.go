package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"repro"
)

// Live search progress for interactive runs: a SearchObserver rendering a
// single in-place status line on stderr (carriage return + erase-line), so
// long BIG_LOOP searches show tries done, the best score so far and the
// cycling try without scrolling the terminal. Enabled automatically when
// stderr is a terminal (-progress auto), and never on the parallel ranks —
// the facade delivers events once, from rank 0.

// progressPrinter implements repro.SearchObserver. Safe for the concurrent
// delivery a variant-parallel search produces.
type progressPrinter struct {
	mu    sync.Mutex
	w     io.Writer
	total int
	done  int
	best  float64 // -Inf until the first keep
	bestJ int
	// The try currently cycling.
	cycling bool
	startJ  int
	cycle   int
	logPost float64
	wrote   bool
}

func newProgressPrinter(w io.Writer) *progressPrinter {
	return &progressPrinter{w: w, best: math.Inf(-1)}
}

// ObserveTry implements repro.SearchObserver.
func (p *progressPrinter) ObserveTry(ev repro.TryEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ev.Total > p.total {
		p.total = ev.Total
	}
	if ev.Done > p.done {
		p.done = ev.Done
	}
	switch ev.Kind {
	case repro.TryClaimed:
		p.cycling = true
		p.startJ = ev.StartJ
		p.cycle = 0
		p.logPost = math.Inf(-1)
	case repro.TryCycle:
		p.cycling = true
		p.startJ = ev.StartJ
		p.cycle = ev.Cycle
		p.logPost = ev.LogPost
	default: // commit verdicts
		p.cycling = false
		if !math.IsInf(ev.BestScore, -1) {
			p.best = ev.BestScore
			p.bestJ = ev.BestJ
		}
	}
	p.render()
}

// render redraws the status line; callers hold p.mu.
func (p *progressPrinter) render() {
	line := fmt.Sprintf("search %d/%d tries", p.done, p.total)
	if !math.IsInf(p.best, -1) {
		line += fmt.Sprintf("  best score %.4f (J=%d)", p.best, p.bestJ)
	}
	if p.cycling {
		line += fmt.Sprintf("  [start_j=%d cycle %d", p.startJ, p.cycle)
		if !math.IsInf(p.logPost, -1) {
			line += fmt.Sprintf(" logpost %.2f", p.logPost)
		}
		line += "]"
	}
	fmt.Fprintf(p.w, "\r\x1b[2K%s", line)
	p.wrote = true
}

// finish erases the status line so the final report starts on a clean row.
func (p *progressPrinter) finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wrote {
		fmt.Fprint(p.w, "\r\x1b[2K")
		p.wrote = false
	}
}

// multiSearchObserver fans each event out to every member in order.
type multiSearchObserver []repro.SearchObserver

func (m multiSearchObserver) ObserveTry(ev repro.TryEvent) {
	for _, o := range m {
		o.ObserveTry(ev)
	}
}

// isTerminal reports whether f is an interactive terminal.
func isTerminal(f *os.File) bool {
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
