package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIObservabilityOutputs drives the full observability surface: a
// 4-rank Meiko run with -trace-out, -events-out, -metrics-out and
// -phase-profile must print the phase table and breakdown and leave valid
// artifacts on disk.
func TestCLIObservabilityOutputs(t *testing.T) {
	path := writeDataset(t, 800)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	eventsPath := filepath.Join(dir, "events.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")
	var buf bytes.Buffer
	err := run([]string{
		"-data", path, "-procs", "4", "-start-j", "4", "-tries", "1",
		"-max-cycles", "10", "-machine", "meiko",
		"-trace-out", tracePath, "-events-out", eventsPath,
		"-metrics-out", metricsPath, "-phase-profile",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"update_wts", "update_parameters", "update_approximations",
		"Comm/compute breakdown", "comm%",
		"chrome trace written to", "trace events written to", "metrics written to",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			tids[ev.Tid] = true
		}
	}
	if len(tids) != 4 {
		t.Fatalf("trace has %d tracks, want 4", len(tids))
	}

	events, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(events), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("events file is empty")
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("events line %d is not valid JSON: %s", i, line)
		}
	}

	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Ranks     int `json:"ranks"`
		Breakdown *struct {
			CommSeconds float64 `json:"comm_seconds"`
		} `json:"breakdown"`
	}
	if err := json.Unmarshal(metrics, &m); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v", err)
	}
	if m.Ranks != 4 || m.Breakdown == nil || m.Breakdown.CommSeconds <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestCLIPprofOutputs checks the -pprof flag writes both runtime profiles.
func TestCLIPprofOutputs(t *testing.T) {
	path := writeDataset(t, 300)
	prefix := filepath.Join(t.TempDir(), "prof")
	var buf bytes.Buffer
	err := run([]string{
		"-data", path, "-start-j", "2", "-tries", "1", "-max-cycles", "5",
		"-pprof", prefix,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// The heap profile is written by run's deferred handler, so both files
	// must exist once run returns.
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		if fi, err := os.Stat(prefix + suffix); err != nil || fi.Size() == 0 {
			t.Fatalf("missing or empty profile %s%s: %v", prefix, suffix, err)
		}
	}
}
