package main

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro"
)

// lastLine extracts the most recent in-place redraw from the raw stream
// (frames are separated by "\r\x1b[2K").
func lastLine(buf *bytes.Buffer) string {
	frames := strings.Split(buf.String(), "\r\x1b[2K")
	return frames[len(frames)-1]
}

func TestProgressPrinterRendering(t *testing.T) {
	var buf bytes.Buffer
	p := newProgressPrinter(&buf)

	p.ObserveTry(repro.TryEvent{Kind: repro.TryClaimed, Index: 0, StartJ: 2, Done: 0, Total: 6})
	if got := lastLine(&buf); !strings.Contains(got, "search 0/6 tries") || !strings.Contains(got, "start_j=2") {
		t.Errorf("claimed frame: %q", got)
	}
	if got := lastLine(&buf); strings.Contains(got, "logpost") {
		t.Errorf("logpost shown before the first cycle: %q", got)
	}

	p.ObserveTry(repro.TryEvent{Kind: repro.TryCycle, StartJ: 2, Cycle: 4, LogPost: -321.75, Total: 6})
	if got := lastLine(&buf); !strings.Contains(got, "cycle 4") || !strings.Contains(got, "logpost -321.75") {
		t.Errorf("cycle frame: %q", got)
	}

	p.ObserveTry(repro.TryEvent{
		Kind: repro.TryConverged, Done: 1, Total: 6, BestScore: -123.4567, BestJ: 3,
	})
	got := lastLine(&buf)
	if !strings.Contains(got, "search 1/6 tries") {
		t.Errorf("commit frame count: %q", got)
	}
	if !strings.Contains(got, "best score -123.4567 (J=3)") {
		t.Errorf("commit frame best: %q", got)
	}
	if strings.Contains(got, "start_j=") {
		t.Errorf("committed frame still shows a cycling try: %q", got)
	}

	// A duplicate commit with no keep yet must not fabricate a best score.
	var buf2 bytes.Buffer
	p2 := newProgressPrinter(&buf2)
	p2.ObserveTry(repro.TryEvent{Kind: repro.TryDuplicate, Done: 1, Total: 2, BestScore: math.Inf(-1)})
	if got := lastLine(&buf2); strings.Contains(got, "best score") {
		t.Errorf("-Inf best rendered: %q", got)
	}

	p.finish()
	if !strings.HasSuffix(buf.String(), "\r\x1b[2K") {
		t.Error("finish did not erase the status line")
	}
	n := buf.Len()
	p.finish()
	if buf.Len() != n {
		t.Error("finish wrote again after the line was already erased")
	}
}

func TestProgressPrinterFinishWithoutRender(t *testing.T) {
	var buf bytes.Buffer
	p := newProgressPrinter(&buf)
	p.finish()
	if buf.Len() != 0 {
		t.Errorf("finish on an idle printer wrote %q", buf.String())
	}
}

func TestMultiSearchObserverFanout(t *testing.T) {
	var a, b bytes.Buffer
	pa, pb := newProgressPrinter(&a), newProgressPrinter(&b)
	m := multiSearchObserver{pa, pb}
	m.ObserveTry(repro.TryEvent{Kind: repro.TryConverged, Done: 2, Total: 3, BestScore: -1, BestJ: 2})
	if a.Len() == 0 || b.Len() == 0 {
		t.Error("fanout skipped a member")
	}
	if a.String() != b.String() {
		t.Errorf("members diverged: %q vs %q", a.String(), b.String())
	}
}
