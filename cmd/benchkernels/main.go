// Command benchkernels turns the text output of
//
//	go test -run '^$' -bench 'BenchmarkUpdateWts|BenchmarkBaseCycle' \
//	    -benchmem ./internal/autoclass
//
// (read from stdin) into BENCH_kernels.json: the committed baseline of the
// blocked-vs-reference kernel comparison. The JSON keeps every raw
// benchmark line verbatim — `jq -r .raw_lines[]` reconstructs input
// benchstat accepts — alongside the parsed ns/op, B/op and allocs/op of
// each benchmark and the blocked-vs-reference speedup per benchmark
// family, so CI can assert on the numbers without re-parsing Go's bench
// format.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path, e.g.
	// "BenchmarkBaseCycle/kernels=blocked".
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was on.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Speedup compares the kernels=blocked and kernels=reference variants of
// one benchmark family.
type Speedup struct {
	Benchmark   string  `json:"benchmark"`
	BlockedNs   float64 `json:"blocked_ns_per_op"`
	ReferenceNs float64 `json:"reference_ns_per_op"`
	// Speedup is reference/blocked: >1 means the blocked kernels win.
	Speedup float64 `json:"speedup"`
	// BytesNotIncreased is true when blocked B/op <= reference B/op (or
	// -benchmem was off); the ISSUE-4 acceptance requires it.
	BytesNotIncreased bool `json:"bytes_not_increased"`
}

// Report is the BENCH_kernels.json schema.
type Report struct {
	// Goos/Goarch/CPU echo the bench header when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Results holds every parsed benchmark line.
	Results []Result `json:"results"`
	// Speedups pairs blocked vs reference per benchmark family.
	Speedups []Speedup `json:"speedups"`
	// RawLines are the verbatim benchmark lines (benchstat-compatible).
	RawLines []string `json:"raw_lines"`
}

func main() {
	out := flag.String("o", "BENCH_kernels.json", "output path (- for stdout)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchkernels:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		rep.Results = append(rep.Results, res)
		rep.RawLines = append(rep.RawLines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	rep.Speedups = speedups(rep.Results)
	return rep, nil
}

// parseBenchLine parses one `BenchmarkName-8  N  X ns/op [Y B/op  Z allocs/op]`
// line. The -8 GOMAXPROCS suffix is stripped from the name.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			res.BytesPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		}
	}
	return res, true
}

// speedups pairs kernels=blocked with kernels=reference within each
// benchmark family (the name up to the sub-benchmark separator).
func speedups(results []Result) []Speedup {
	type pair struct{ blocked, reference *Result }
	fams := map[string]*pair{}
	for i := range results {
		res := &results[i]
		base, variant, ok := strings.Cut(res.Name, "/")
		if !ok {
			continue
		}
		p := fams[base]
		if p == nil {
			p = &pair{}
			fams[base] = p
		}
		switch variant {
		case "kernels=blocked":
			p.blocked = res
		case "kernels=reference":
			p.reference = res
		}
	}
	names := make([]string, 0, len(fams))
	for name, p := range fams {
		if p.blocked != nil && p.reference != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]Speedup, 0, len(names))
	for _, name := range names {
		p := fams[name]
		s := Speedup{
			Benchmark:         name,
			BlockedNs:         p.blocked.NsPerOp,
			ReferenceNs:       p.reference.NsPerOp,
			Speedup:           p.reference.NsPerOp / p.blocked.NsPerOp,
			BytesNotIncreased: true,
		}
		if p.blocked.BytesPerOp != nil && p.reference.BytesPerOp != nil {
			s.BytesNotIncreased = *p.blocked.BytesPerOp <= *p.reference.BytesPerOp
		}
		out = append(out, s)
	}
	return out
}
