package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/autoclass
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkUpdateWts/kernels=blocked-8         	     735	   1505954 ns/op	       0 B/op	       0 allocs/op
BenchmarkUpdateWts/kernels=reference-8       	     306	   4004261 ns/op	       0 B/op	       0 allocs/op
BenchmarkBaseCycle/kernels=blocked-8         	     669	   1856208 ns/op	      64 B/op	       1 allocs/op
BenchmarkBaseCycle/kernels=reference-8       	     190	   5491481 ns/op	      64 B/op	       1 allocs/op
PASS
ok  	repro/internal/autoclass	6.077s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU == "" {
		t.Fatalf("header not captured: %+v", rep)
	}
	if len(rep.Results) != 4 || len(rep.RawLines) != 4 {
		t.Fatalf("want 4 results and raw lines, got %d/%d", len(rep.Results), len(rep.RawLines))
	}
	r0 := rep.Results[0]
	if r0.Name != "BenchmarkUpdateWts/kernels=blocked" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", r0.Name)
	}
	if r0.Iterations != 735 || r0.NsPerOp != 1505954 {
		t.Fatalf("ns/op not parsed: %+v", r0)
	}
	if r0.BytesPerOp == nil || *r0.BytesPerOp != 0 || r0.AllocsPerOp == nil || *r0.AllocsPerOp != 0 {
		t.Fatalf("-benchmem columns not parsed: %+v", r0)
	}
	r2 := rep.Results[2]
	if r2.BytesPerOp == nil || *r2.BytesPerOp != 64 || r2.AllocsPerOp == nil || *r2.AllocsPerOp != 1 {
		t.Fatalf("-benchmem columns not parsed: %+v", r2)
	}
	if len(rep.Speedups) != 2 {
		t.Fatalf("want 2 speedup pairs, got %+v", rep.Speedups)
	}
	// sorted by family name: BaseCycle first
	bc := rep.Speedups[0]
	if bc.Benchmark != "BenchmarkBaseCycle" {
		t.Fatalf("unexpected order: %+v", rep.Speedups)
	}
	if want := 5491481.0 / 1856208.0; bc.Speedup != want {
		t.Fatalf("speedup %v, want %v", bc.Speedup, want)
	}
	if !bc.BytesNotIncreased {
		t.Fatalf("64 B/op vs 64 B/op must count as not increased")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}
