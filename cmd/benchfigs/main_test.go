package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The quick sweeps are still multi-second runs; each experiment gets one
// smoke test over a buffer and the structural assertions live in
// internal/harness. Here we verify the CLI wiring: selection, rendering
// and shape-check reporting.

func TestBenchfigsUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestBenchfigsProfileQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "profile", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"update_wts", "base_cycle share", "shape checks", "regenerated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchfigsSeqQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "seq", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Pentium") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestBenchfigsFig7AliasesFig6(t *testing.T) {
	// -fig 7 must run the fig 6 experiment (7 derives from its data).
	var buf bytes.Buffer
	if err := run([]string{"-fig", "7", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 7 — speedup") || !strings.Contains(out, "Fig 6 — average elapsed") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestBenchfigsFig8Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "8", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 8") || !strings.Contains(out, "T(maxP)/T(minP)") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "shape checks: all passed") {
		t.Fatalf("fig8 shape checks failed:\n%s", out)
	}
}

func TestBenchfigsAblationQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "ablation", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "wts-only [7]") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "shape checks: all passed") {
		t.Fatalf("ablation shape checks failed:\n%s", out)
	}
}

func TestBenchfigsTSVOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-fig", "seq", "-quick", "-tsv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "seq_anchor.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if lines[0] != "tuples\tseconds" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 4 { // header + 3 sizes in quick mode
		t.Fatalf("rows %d", len(lines))
	}
}
