// Command benchfigs regenerates every table and figure of the paper's
// evaluation (DESIGN.md experiment index): Fig. 6 elapsed times, Fig. 7
// speedup, Fig. 8 scaleup, the §3.1 profile table, the §3 sequential-time
// anchor, the §5 strategy ablation, the collective-algorithm ablation, and
// the portability study. Each experiment prints its table (and, for the
// figures, an ASCII rendering of the curves) plus the result of its
// qualitative shape checks.
//
// Usage:
//
//	benchfigs -fig all            # everything, full sweeps (minutes)
//	benchfigs -fig 6 -quick       # one figure, reduced sweep (seconds)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchfigs:", err)
		os.Exit(1)
	}
}

type experiment struct {
	id  string
	run func(quick bool, w io.Writer) error
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchfigs", flag.ContinueOnError)
	fig := fs.String("fig", "all", "experiment: 6, 7, 8, profile, seq, ablation, algo, portability, async or all")
	quick := fs.Bool("quick", false, "reduced sweeps for a fast smoke run")
	tsvDir := fs.String("tsv", "", "also write each experiment's series as TSV files into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tsvDir != "" {
		if err := os.MkdirAll(*tsvDir, 0o755); err != nil {
			return err
		}
	}
	tsv = *tsvDir
	experiments := []experiment{
		{"6", runFig67}, // Fig 7 derives from Fig 6's runs
		{"8", runFig8},
		{"profile", runProfile},
		{"seq", runSeq},
		{"ablation", runAblation},
		{"algo", runAlgo},
		{"portability", runPortability},
		{"async", runAsync},
	}
	want := *fig
	if want == "7" {
		want = "6"
	}
	ran := false
	for _, ex := range experiments {
		if want != "all" && want != ex.id {
			continue
		}
		ran = true
		start := time.Now()
		if err := ex.run(*quick, w); err != nil {
			return fmt.Errorf("experiment %s: %w", ex.id, err)
		}
		fmt.Fprintf(w, "[experiment %s regenerated in %.1fs]\n\n", ex.id, time.Since(start).Seconds())
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *fig)
	}
	return nil
}

// tsv is the optional output directory for machine-readable series.
var tsv string

// tsvWriter is implemented by every harness result.
type tsvWriter interface {
	WriteTSV(w io.Writer) error
}

// saveTSV writes one experiment's series when -tsv is set.
func saveTSV(name string, r tsvWriter) error {
	if tsv == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(tsv, name+".tsv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteTSV(f); err != nil {
		return err
	}
	return f.Close()
}

func printChecks(w io.Writer, bad []string) {
	if len(bad) == 0 {
		fmt.Fprintln(w, "shape checks: all passed")
		return
	}
	fmt.Fprintln(w, "shape checks FAILED:")
	for _, b := range bad {
		fmt.Fprintln(w, "  -", b)
	}
}

func runFig67(quick bool, w io.Writer) error {
	cfg := harness.DefaultFig6Config()
	if quick {
		cfg.Sizes = []int{5000, 20000, 100000}
		cfg.Procs = []int{1, 2, 4, 8, 10}
		cfg.Opts.Repeats = 1
	}
	res, err := harness.RunFig6(cfg)
	if err != nil {
		return err
	}
	if err := saveTSV("fig6_7", res); err != nil {
		return err
	}
	fmt.Fprintln(w, res.Table())
	fmt.Fprintln(w, res.SpeedupTable())
	if chart, err := res.SpeedupChart(); err == nil {
		fmt.Fprintln(w, chart)
	}
	for si, n := range res.Sizes {
		fmt.Fprintf(w, "size %6d: optimal P = %d, speedup at max P = %.2f\n",
			n, res.OptimalProcs(si), res.Speedup(si, len(res.Procs)-1))
	}
	printChecks(w, res.CheckShape())
	fmt.Fprintln(w)
	return nil
}

func runFig8(quick bool, w io.Writer) error {
	cfg := harness.DefaultFig8Config()
	if quick {
		cfg.Procs = []int{1, 2, 4, 8, 10}
		cfg.Cycles = 3
		cfg.Opts.Repeats = 1
	}
	res, err := harness.RunFig8(cfg)
	if err != nil {
		return err
	}
	if err := saveTSV("fig8", res); err != nil {
		return err
	}
	fmt.Fprintln(w, res.Table())
	if chart, err := res.Chart(); err == nil {
		fmt.Fprintln(w, chart)
	}
	for ci, j := range res.Clusters {
		fmt.Fprintf(w, "clusters %2d: T(maxP)/T(minP) = %.3f\n", j, res.ScaleupRatio(ci))
	}
	printChecks(w, res.CheckShape())
	fmt.Fprintln(w)
	return nil
}

func runProfile(quick bool, w io.Writer) error {
	cfg := harness.DefaultProfileConfig()
	if quick {
		cfg.N = 4000
		cfg.Search.EM.MaxCycles = 40
	}
	res, err := harness.RunProfile(cfg)
	if err != nil {
		return err
	}
	if err := saveTSV("profile", res); err != nil {
		return err
	}
	fmt.Fprintln(w, res.Table())
	printChecks(w, res.CheckShape())
	fmt.Fprintln(w)
	return nil
}

func runSeq(quick bool, w io.Writer) error {
	cfg := harness.DefaultSeqAnchorConfig()
	if quick {
		cfg.Sizes = []int{14000, 56000, 140000}
	}
	res, err := harness.RunSeqAnchor(cfg)
	if err != nil {
		return err
	}
	if err := saveTSV("seq_anchor", res); err != nil {
		return err
	}
	fmt.Fprintln(w, res.Table())
	printChecks(w, res.CheckShape())
	fmt.Fprintln(w)
	return nil
}

func runAlgo(quick bool, w io.Writer) error {
	cfg := harness.DefaultAlgoConfig()
	if quick {
		cfg.N = 10000
		cfg.Procs = []int{2, 8}
		cfg.Opts.Repeats = 1
	}
	res, err := harness.RunAlgo(cfg)
	if err != nil {
		return err
	}
	if err := saveTSV("algo", res); err != nil {
		return err
	}
	fmt.Fprintln(w, res.Table())
	printChecks(w, res.CheckShape())
	fmt.Fprintln(w)
	return nil
}

func runPortability(quick bool, w io.Writer) error {
	cfg := harness.DefaultPortabilityConfig()
	if quick {
		cfg.N = 10000
		cfg.Procs = []int{1, 4, 10}
		cfg.Opts.Repeats = 1
	}
	res, err := harness.RunPortability(cfg)
	if err != nil {
		return err
	}
	if err := saveTSV("portability", res); err != nil {
		return err
	}
	fmt.Fprintln(w, res.Table())
	if chart, err := res.Chart(); err == nil {
		fmt.Fprintln(w, chart)
	}
	printChecks(w, res.CheckShape())
	fmt.Fprintln(w)
	return nil
}

func runAsync(quick bool, w io.Writer) error {
	cfg := harness.DefaultAsyncConfig()
	if quick {
		cfg.TuplesPerProc = 2000
		cfg.Procs = []int{2, 4, 10}
		cfg.SyncEvery = []int{1, 4}
		cfg.Cycles = 4
	}
	res, err := harness.RunAsync(cfg)
	if err != nil {
		return err
	}
	if err := saveTSV("async", res); err != nil {
		return err
	}
	fmt.Fprintln(w, res.Table())
	printChecks(w, res.CheckShape())
	fmt.Fprintln(w)
	return nil
}

func runAblation(quick bool, w io.Writer) error {
	cfg := harness.DefaultAblationConfig()
	if quick {
		cfg.N = 20000
		cfg.Procs = []int{1, 4, 10}
		cfg.Opts.Repeats = 1
	}
	res, err := harness.RunAblation(cfg)
	if err != nil {
		return err
	}
	if err := saveTSV("ablation", res); err != nil {
		return err
	}
	fmt.Fprintln(w, res.Table())
	printChecks(w, res.CheckShape())
	fmt.Fprintln(w)
	return nil
}
