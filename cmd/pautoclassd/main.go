// Command pautoclassd serves P-AutoClass over HTTP: asynchronous training
// jobs on the distributed checkpointed search, a versioned model registry
// with explicit publish/activate semantics, batched and cached prediction
// with admission control, and the run observability endpoints.
//
//	pautoclassd -addr :8080 -dir ./pautoclassd-data -procs 4
//
// Endpoints:
//
//	POST /v1/jobs                     submit a training job (async)
//	GET  /v1/jobs                     list jobs
//	GET  /v1/jobs/{id}                poll a job
//	GET  /v1/jobs/{id}/progress       live BIG_LOOP progress (tries, best, ETA)
//	GET  /v1/models                   list registered models
//	POST /v1/models                   publish a finished job as a model version
//	GET  /v1/models/{id}              one model: versions, active, cache stats
//	POST /v1/models/{id}/activate     switch the serving version
//	POST /v1/models/{id}/predict      batch-score rows (optional version pin;
//	                                  bare job IDs still work but are deprecated)
//	GET  /metrics                     Prometheus exposition (JSON under Accept: application/json)
//	GET  /metrics.json                server + last-run metrics (JSON)
//	GET  /debug/trace                 Chrome trace of the last training run
//	GET  /debug/pprof/                Go profiles (with -pprof)
//	GET  /healthz                     liveness
//	GET  /readyz                      readiness (503 while draining)
//
// Every non-2xx response is {"error": {"code", "message"}, "error_string"}
// with a stable machine-readable code; 429/503 backpressure responses add
// Retry-After.
//
// On SIGINT/SIGTERM a running search is stopped cooperatively: the rank
// group agrees on a stop cycle, persists a resumable snapshot, and the job
// returns to the queue — a restarted daemon resumes it bitwise where it
// stopped. The model registry and its artifacts survive restarts the same
// way: identical versions, identical response bytes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/logx"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "pautoclassd-data", "state directory (jobs, checkpoints, model registry)")
	procs := flag.Int("procs", 2, "default ranks per training run")
	every := flag.Int("every", 4, "mid-try checkpoint cadence in cycles")
	maxBody := flag.Int64("max-body-bytes", 0, "request body cap on data routes (0 = 64 MiB default)")
	predictProcs := flag.Int("predict-procs", 1, "predict worker ranks per batch (>1 = scale-out sharding)")
	predictTCP := flag.Bool("predict-tcp", false, "run predict worker ranks on the loopback TCP transport")
	predictPar := flag.Int("predict-parallelism", 0, "goroutines per predict rank (0 = one)")
	predictQueue := flag.Int("predict-queue", 0, "per-model-version predict queue depth (0 = 64 default)")
	predictBatch := flag.Int("predict-batch-rows", 0, "max coalesced rows per scoring pass (0 = 4096 default)")
	predictInflight := flag.Int("predict-inflight", 0, "server-wide predict admission cap (0 = 256 default)")
	predictCache := flag.Int("predict-cache", 0, "response cache entries (0 = 256 default, -1 = off)")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	log, err := logx.New(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pautoclassd:", err)
		os.Exit(1)
	}
	cfg := serve.Config{
		Dir: *dir, Procs: *procs, Every: *every,
		Logger: log, EnablePprof: *enablePprof,
		MaxBodyBytes:        *maxBody,
		PredictProcs:        *predictProcs,
		PredictTCP:          *predictTCP,
		PredictParallelism:  *predictPar,
		PredictQueueDepth:   *predictQueue,
		PredictMaxBatchRows: *predictBatch,
		PredictMaxInflight:  *predictInflight,
		PredictCacheEntries: *predictCache,
	}
	if err := run(log, *addr, cfg); err != nil {
		log.Error("pautoclassd exiting", "error", err)
		os.Exit(1)
	}
}

func run(log *slog.Logger, addr string, cfg serve.Config) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		log.Info("pautoclassd listening", "addr", addr, "dir", cfg.Dir,
			"procs", cfg.Procs, "predict_procs", cfg.PredictProcs, "pprof", cfg.EnablePprof)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Info("draining on signal (running job checkpoints and requeues)", "signal", sig.String())
	case err := <-errc:
		srv.Close()
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Warn("http shutdown", "error", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Info("pautoclassd stopped")
	return nil
}
