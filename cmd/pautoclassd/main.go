// Command pautoclassd serves P-AutoClass over HTTP: asynchronous training
// jobs on the distributed checkpointed search, a fitted-model registry with
// batch prediction, and the run observability endpoints.
//
//	pautoclassd -addr :8080 -dir ./pautoclassd-data -procs 4
//
// Endpoints:
//
//	POST /v1/jobs                   submit a training job (async)
//	GET  /v1/jobs                   list jobs
//	GET  /v1/jobs/{id}              poll a job
//	POST /v1/models/{id}/predict    batch-score new rows against a model
//	GET  /metrics                   server + last-run metrics (JSON)
//	GET  /debug/trace               Chrome trace of the last training run
//	GET  /healthz                   liveness
//
// On SIGINT/SIGTERM a running search is stopped cooperatively: the rank
// group agrees on a stop cycle, persists a resumable snapshot, and the job
// returns to the queue — a restarted daemon resumes it bitwise where it
// stopped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "pautoclassd-data", "state directory (jobs, checkpoints, models)")
	procs := flag.Int("procs", 2, "default ranks per training run")
	every := flag.Int("every", 4, "mid-try checkpoint cadence in cycles")
	flag.Parse()

	if err := run(*addr, *dir, *procs, *every); err != nil {
		fmt.Fprintln(os.Stderr, "pautoclassd:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, procs, every int) error {
	srv, err := serve.New(serve.Config{Dir: dir, Procs: procs, Every: every})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		log.Printf("pautoclassd listening on %s (state: %s, procs: %d)", addr, dir, procs)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("pautoclassd: %s: draining (running job checkpoints and requeues)", sig)
	case err := <-errc:
		srv.Close()
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("pautoclassd: http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Print("pautoclassd: stopped")
	return nil
}
