// Command pautoclassd serves P-AutoClass over HTTP: asynchronous training
// jobs on the distributed checkpointed search, a fitted-model registry with
// batch prediction, and the run observability endpoints.
//
//	pautoclassd -addr :8080 -dir ./pautoclassd-data -procs 4
//
// Endpoints:
//
//	POST /v1/jobs                   submit a training job (async)
//	GET  /v1/jobs                   list jobs
//	GET  /v1/jobs/{id}              poll a job
//	GET  /v1/jobs/{id}/progress     live BIG_LOOP progress (tries, best, ETA)
//	POST /v1/models/{id}/predict    batch-score new rows against a model
//	GET  /metrics                   Prometheus exposition (JSON under Accept: application/json)
//	GET  /metrics.json              server + last-run metrics (JSON)
//	GET  /debug/trace               Chrome trace of the last training run
//	GET  /debug/pprof/              Go profiles (with -pprof)
//	GET  /healthz                   liveness
//	GET  /readyz                    readiness (503 while draining)
//
// On SIGINT/SIGTERM a running search is stopped cooperatively: the rank
// group agrees on a stop cycle, persists a resumable snapshot, and the job
// returns to the queue — a restarted daemon resumes it bitwise where it
// stopped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/logx"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "pautoclassd-data", "state directory (jobs, checkpoints, models)")
	procs := flag.Int("procs", 2, "default ranks per training run")
	every := flag.Int("every", 4, "mid-try checkpoint cadence in cycles")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	log, err := logx.New(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pautoclassd:", err)
		os.Exit(1)
	}
	if err := run(log, *addr, *dir, *procs, *every, *enablePprof); err != nil {
		log.Error("pautoclassd exiting", "error", err)
		os.Exit(1)
	}
}

func run(log *slog.Logger, addr, dir string, procs, every int, enablePprof bool) error {
	srv, err := serve.New(serve.Config{
		Dir: dir, Procs: procs, Every: every,
		Logger: log, EnablePprof: enablePprof,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		log.Info("pautoclassd listening", "addr", addr, "dir", dir, "procs", procs, "pprof", enablePprof)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Info("draining on signal (running job checkpoints and requeues)", "signal", sig.String())
	case err := <-errc:
		srv.Close()
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Warn("http shutdown", "error", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Info("pautoclassd stopped")
	return nil
}
