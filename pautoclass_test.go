package repro

import (
	"path/filepath"
	"strings"
	"testing"
)

func quickCfg() SearchConfig {
	cfg := DefaultSearchConfig()
	cfg.StartJList = []int{2, 5}
	cfg.Tries = 1
	cfg.EM.MaxCycles = 40
	return cfg
}

func TestFacadeSequentialCluster(t *testing.T) {
	ds, err := PaperDataset(1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(ds, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.J() < 4 || res.Best.J() > 6 {
		t.Fatalf("best J=%d, expected about 5", res.Best.J())
	}
	rep := BuildReport(res.Best, ds)
	if !strings.Contains(rep.String(), "AutoClass classification report") {
		t.Fatal("report rendering broken")
	}
}

func TestFacadeParallelMatchesSequential(t *testing.T) {
	ds, err := PaperDataset(1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	seq, err := Cluster(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, stats, err := ClusterParallel(ds, cfg, ParallelConfig{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Best.J() != seq.Best.J() {
		t.Fatalf("parallel J=%d, sequential %d", par.Best.J(), seq.Best.J())
	}
	if stats.WallSeconds <= 0 {
		t.Fatal("no wall time recorded")
	}
	if stats.VirtualSeconds != 0 {
		t.Fatal("virtual time without a machine")
	}
}

func TestFacadeVirtualMachine(t *testing.T) {
	ds, err := PaperDataset(5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	m := MeikoCS2()
	_, stats, err := ClusterParallel(ds, cfg, ParallelConfig{Procs: 4, Machine: &m})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VirtualSeconds <= 0 || stats.VirtualCommSeconds <= 0 {
		t.Fatalf("virtual stats %+v", stats)
	}
	if stats.VirtualCommSeconds >= stats.VirtualSeconds {
		t.Fatal("communication exceeds total time")
	}
}

func TestFacadeTCP(t *testing.T) {
	ds, err := PaperDataset(500, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.StartJList = []int{3}
	res, _, err := ClusterParallel(ds, cfg, ParallelConfig{Procs: 3, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.J() < 1 {
		t.Fatal("no classification")
	}
}

func TestFacadeDatasetRoundTripAndCheckpoint(t *testing.T) {
	ds, err := PaperDataset(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "d.bin")
	if err := SaveDataset(dataPath, ds); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() {
		t.Fatalf("round trip N=%d", back.N())
	}
	res, err := Cluster(ds, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(dir, "ck.json")
	if err := SaveCheckpoint(ckPath, res.Best); err != nil {
		t.Fatal(err)
	}
	cls, err := LoadCheckpoint(ckPath, ds)
	if err != nil {
		t.Fatal(err)
	}
	if cls.J() != res.Best.J() {
		t.Fatalf("checkpoint J=%d", cls.J())
	}
}

func TestFacadeCorrelated(t *testing.T) {
	ds, err := PaperDataset(800, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterCorrelated(ds, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.J() < 1 {
		t.Fatal("no classification")
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := Cluster(nil, quickCfg()); err == nil {
		t.Error("nil dataset accepted")
	}
	ds, _ := PaperDataset(10, 1)
	if _, _, err := ClusterParallel(ds, quickCfg(), ParallelConfig{Procs: 0}); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := ClusterCorrelated(nil, quickCfg()); err == nil {
		t.Error("nil dataset accepted by correlated")
	}
}

func TestFacadeNewDataset(t *testing.T) {
	ds, err := NewDataset("mine", []Attribute{
		{Name: "x", Type: Real},
		{Name: "c", Type: Discrete, Levels: []string{"a", "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.AppendRow([]float64{1.5, 0}); err != nil {
		t.Fatal(err)
	}
	if err := ds.AppendRow([]float64{Missing, 1}); err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 {
		t.Fatalf("N=%d", ds.N())
	}
}

func TestFormatHMSFacade(t *testing.T) {
	if FormatHMS(3661) != "1.01.01" {
		t.Fatalf("FormatHMS(3661) = %s", FormatHMS(3661))
	}
}

func TestFacadeClusterModels(t *testing.T) {
	ds, err := PaperDataset(1200, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.StartJList = []int{5}
	res, err := ClusterModels(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two reals with negative values: independent + correlated candidates.
	if len(res.PerSpec) != 2 {
		t.Fatalf("per-spec results %d", len(res.PerSpec))
	}
	if res.Best == nil || res.BestSpec == "" {
		t.Fatal("no best model")
	}
	if _, err := ClusterModels(nil, cfg); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestFacadeCasesAndSharpness(t *testing.T) {
	ds, err := PaperDataset(800, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(ds, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	cases := AssignCases(res.Best, ds, 0.5)
	if len(cases) != ds.N() {
		t.Fatalf("%d cases", len(cases))
	}
	sizes := ClassSizes(res.Best, ds)
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != ds.N() {
		t.Fatalf("sizes sum %d", total)
	}
	if sharp := MeanMaxMembership(res.Best, ds); sharp < 0.8 {
		t.Fatalf("sharpness %v", sharp)
	}
	var sb strings.Builder
	if err := WriteCases(&sb, res.Best, ds, 0.5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# case assignments") {
		t.Fatal("case output malformed")
	}
}

func TestFacadeEvaluateRecoversPlantedStructure(t *testing.T) {
	// End-to-end recovery quality: cluster the paper mixture and score
	// against the planted labels with the external metrics.
	mix := PaperMixtureForTest()
	ds, labels, err := mix.Generate(4000, 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.StartJList = []int{5}
	res, err := Cluster(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Evaluate(res.Best, ds, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari := ct.AdjustedRandIndex(); ari < 0.95 {
		t.Fatalf("ARI %v, expected near-perfect recovery", ari)
	}
	if nmi := ct.NormalizedMutualInformation(); nmi < 0.9 {
		t.Fatalf("NMI %v", nmi)
	}
	if p := ct.Purity(); p < 0.95 {
		t.Fatalf("purity %v", p)
	}
	// Validation paths.
	if _, err := Evaluate(res.Best, ds, labels[:10]); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if _, err := Evaluate(nil, ds, labels); err == nil {
		t.Fatal("nil classification accepted")
	}
}
