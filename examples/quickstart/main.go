// Quickstart: cluster the paper's synthetic two-attribute dataset with
// sequential AutoClass, then with P-AutoClass on four ranks, and show that
// both find the same five planted clusters.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The paper's evaluation workload: two real attributes, five Gaussian
	// clusters of unequal weight.
	ds, err := repro.PaperDataset(5000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d tuples, %d real attributes\n\n", ds.N(), ds.NumAttrs())

	cfg := repro.DefaultSearchConfig()
	cfg.StartJList = []int{2, 5, 8} // reduced search for a quick demo
	cfg.Tries = 1

	// Sequential AutoClass.
	seq, err := repro.Run(ds, repro.WithSearchConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential AutoClass: %d classes, log posterior %.2f\n",
		seq.Search.Best.J(), seq.Search.Best.LogPost)

	// P-AutoClass across 4 ranks: same search, same semantics.
	par, err := repro.Run(ds,
		repro.WithSearchConfig(cfg),
		repro.WithParallel(repro.ParallelConfig{Procs: 4}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P-AutoClass (4 ranks):  %d classes, log posterior %.2f (wall %.2fs)\n\n",
		par.Best().J(), par.Best().LogPost, par.Stats.WallSeconds)

	// The full AutoClass-style report: class weights, parameters and
	// per-attribute influence values.
	fmt.Println(repro.BuildReport(par.Best(), ds))

	// Classify a new instance.
	probe := []float64{8.0, 2.0} // near the second planted cluster
	probs := par.Best().Predict(probe)
	fmt.Printf("membership of instance %v:\n", probe)
	for j, p := range probs {
		fmt.Printf("  class %d: %.4f\n", j, p)
	}
}
