// Distributed: the same P-AutoClass search with every byte crossing real
// TCP sockets — the deployment the paper's portability claim targets
// ("P-AutoClass is portable practically on every parallel machine from
// supercomputers to PC clusters"). Verifies that the socket run produces
// exactly the in-process run's classification, then writes the
// AutoClass-style case-assignment file.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	ds, err := repro.PaperDataset(10000, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultSearchConfig()
	cfg.StartJList = []int{2, 5, 8}
	cfg.Tries = 1

	// In-process channel mesh.
	memRun, err := repro.Run(ds,
		repro.WithSearchConfig(cfg),
		repro.WithParallel(repro.ParallelConfig{Procs: 6}))
	if err != nil {
		log.Fatal(err)
	}
	// The identical run over loopback TCP sockets.
	tcpRun, err := repro.Run(ds,
		repro.WithSearchConfig(cfg),
		repro.WithParallel(repro.ParallelConfig{Procs: 6, UseTCP: true}))
	if err != nil {
		log.Fatal(err)
	}
	mem, tcp := memRun.Search, tcpRun.Search
	fmt.Printf("channel mesh: %d classes, log posterior %.4f (%.2fs)\n",
		mem.Best.J(), mem.Best.LogPost, memRun.Stats.WallSeconds)
	fmt.Printf("TCP sockets:  %d classes, log posterior %.4f (%.2fs)\n",
		tcp.Best.J(), tcp.Best.LogPost, tcpRun.Stats.WallSeconds)
	if tcp.Best.LogPost == mem.Best.LogPost {
		fmt.Println("bit-identical across transports — the reduction order, not the wire, defines the result")
	} else {
		fmt.Println("WARNING: transports disagree!")
	}

	// Classification sharpness (paper §2: ~0.99 max membership means
	// well-separated classes).
	fmt.Printf("\nmean max membership: %.4f\n", repro.MeanMaxMembership(tcp.Best, ds))
	fmt.Printf("class sizes (hard assignment): %v\n", repro.ClassSizes(tcp.Best, ds))

	// AutoClass-style case file for the first rows.
	fmt.Println("\nfirst case assignments (threshold 0.1):")
	head := ds.Head(5)
	if err := repro.WriteCases(os.Stdout, tcp.Best, head, 0.1); err != nil {
		log.Fatal(err)
	}
}
