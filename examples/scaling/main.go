// Scaling: the paper's headline experiment in miniature. Runs the same
// classification of the synthetic dataset on 1..10 simulated Meiko CS-2
// processors and prints elapsed time, speedup and communication share —
// the curves of the paper's Figs. 6 and 7. Then holds tuples-per-processor
// fixed to show scaleup (Fig. 8's flat line).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	machine := repro.MeikoCS2()
	cfg := repro.DefaultSearchConfig()
	cfg.StartJList = []int{2, 4, 8}
	cfg.Tries = 1
	cfg.EM.MaxCycles = 15
	cfg.EM.RelDelta = 0 // fixed-cycle protocol: identical work at every P

	const n = 50000
	ds, err := repro.PaperDataset(n, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speedup: clustering %d tuples on the simulated %s\n\n", n, machine.Name)
	fmt.Printf("%5s  %12s  %8s  %6s\n", "procs", "elapsed", "speedup", "comm%")
	var t1 float64
	for p := 1; p <= 10; p++ {
		r, err := repro.Run(ds,
			repro.WithSearchConfig(cfg),
			repro.WithParallel(repro.ParallelConfig{
				Procs:   p,
				Machine: &machine,
			}))
		if err != nil {
			log.Fatal(err)
		}
		stats := r.Stats
		if p == 1 {
			t1 = stats.VirtualSeconds
		}
		fmt.Printf("%5d  %12s  %8.2f  %5.1f%%\n",
			p, repro.FormatHMS(stats.VirtualSeconds), t1/stats.VirtualSeconds,
			100*stats.VirtualCommSeconds/stats.VirtualSeconds)
	}

	// Scaleup: fixed 10 000 tuples per processor.
	fmt.Printf("\nscaleup: fixed 10000 tuples/processor (paper Fig. 8 protocol)\n\n")
	fmt.Printf("%5s  %8s  %12s  %8s\n", "procs", "tuples", "elapsed", "vs P=1")
	var base float64
	for _, p := range []int{1, 2, 4, 6, 8, 10} {
		dsP, err := repro.PaperDataset(10000*p, 42)
		if err != nil {
			log.Fatal(err)
		}
		r, err := repro.Run(dsP,
			repro.WithSearchConfig(cfg),
			repro.WithParallel(repro.ParallelConfig{
				Procs:   p,
				Machine: &machine,
			}))
		if err != nil {
			log.Fatal(err)
		}
		stats := r.Stats
		if p == 1 {
			base = stats.VirtualSeconds
		}
		fmt.Printf("%5d  %8d  %12s  %8.3f\n",
			p, dsP.N(), repro.FormatHMS(stats.VirtualSeconds), stats.VirtualSeconds/base)
	}
	fmt.Println("\nnear-constant elapsed time while data and processors grow together = good scaleup")
}
