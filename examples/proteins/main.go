// Proteins: Bayesian classification of mixed-type protein feature vectors —
// the workload class behind the paper's 300–400 hour protein-sequence
// anchor [3] (Hunter & States). Demonstrates the multinomial model term for
// the discrete secondary-structure attribute, missing-value handling, and
// checkpointing a long run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/datagen"
)

func main() {
	spec := datagen.ProteinMixture()
	ds, _, err := spec.Generate(8000, 11)
	if err != nil {
		log.Fatal(err)
	}
	// Real assay data is gappy: blank 10% of values.
	blanked, err := datagen.InjectMissing(ds, 0.10, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protein workload: %d windows, %d features (3 real + 1 discrete), %d values missing\n\n",
		ds.N(), ds.NumAttrs(), blanked)

	cfg := repro.DefaultSearchConfig()
	cfg.StartJList = []int{2, 4, 8}
	cfg.Tries = 2

	r, err := repro.Run(ds,
		repro.WithSearchConfig(cfg),
		repro.WithParallel(repro.ParallelConfig{Procs: 6}))
	if err != nil {
		log.Fatal(err)
	}
	res := r.Search
	fmt.Printf("discovered %d protein families (score %.1f, %d of %d tries were duplicates)\n\n",
		res.Best.J(), res.Best.Score(), countDuplicates(res), len(res.Tries))

	fmt.Println(repro.BuildReport(res.Best, ds))

	// Checkpoint the classification; a later session can reload it and
	// classify new sequences without re-running the search.
	dir, err := os.MkdirTemp("", "proteins")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ck := filepath.Join(dir, "families.json")
	if err := repro.SaveCheckpoint(ck, res.Best); err != nil {
		log.Fatal(err)
	}
	restored, err := repro.LoadCheckpoint(ck, ds)
	if err != nil {
		log.Fatal(err)
	}
	probe := ds.Row(0)
	fmt.Printf("checkpoint round trip OK: new window classified to family %d (same as before: %v)\n",
		restored.HardAssign(probe), restored.HardAssign(probe) == res.Best.HardAssign(probe))
}

func countDuplicates(res *repro.SearchResult) int {
	n := 0
	for _, tr := range res.Tries {
		if tr.Duplicate {
			n++
		}
	}
	return n
}
