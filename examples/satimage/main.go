// Satimage: unsupervised land-cover discovery on a synthetic Landsat-like
// workload — the use case the paper motivates with AutoClass's 130-hour
// satellite image run [6]. Four spectral bands per pixel; the classifier
// must recover water / soil / crops / forest / urban without labels.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/datagen"
)

func main() {
	mix := datagen.SatImageMixture()
	ds, truth, err := mix.Generate(20000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("satellite workload: %d pixels x %d spectral bands, %d true cover classes\n\n",
		ds.N(), ds.NumAttrs(), len(mix.Components))

	cfg := repro.DefaultSearchConfig()
	cfg.StartJList = []int{2, 5, 8}
	cfg.Tries = 1

	// Cluster in parallel on 8 ranks under the simulated Meiko CS-2 so the
	// run also reports what it would have cost on the paper's hardware.
	machine := repro.MeikoCS2()
	r, err := repro.Run(ds,
		repro.WithSearchConfig(cfg),
		repro.WithParallel(repro.ParallelConfig{
			Procs:   8,
			Machine: &machine,
		}))
	if err != nil {
		log.Fatal(err)
	}
	res, stats := r.Search, r.Stats
	fmt.Printf("found %d cover classes (log posterior %.1f)\n", res.Best.J(), res.Best.LogPost)
	fmt.Printf("wall time %.2fs; on the Meiko CS-2 with 8 processors this run models as %s (%.0f%% communication)\n\n",
		stats.WallSeconds, repro.FormatHMS(stats.VirtualSeconds),
		100*stats.VirtualCommSeconds/stats.VirtualSeconds)

	// Confusion against the hidden truth: count the dominant true class of
	// every discovered class.
	j := res.Best.J()
	confusion := make([][]int, j)
	for c := range confusion {
		confusion[c] = make([]int, len(mix.Components))
	}
	for i := 0; i < ds.N(); i++ {
		confusion[res.Best.HardAssign(ds.Row(i))][truth[i]]++
	}
	names := []string{"water", "soil", "crops", "forest", "urban"}
	fmt.Println("discovered class -> dominant true cover (purity):")
	correct := 0
	for c := range confusion {
		best, total := 0, 0
		for tc, n := range confusion[c] {
			total += n
			if n > confusion[c][best] {
				best = tc
			}
		}
		if total == 0 {
			continue
		}
		correct += confusion[c][best]
		fmt.Printf("  class %d (%5d px) -> %-6s (%.1f%%)\n",
			c, total, names[best], 100*float64(confusion[c][best])/float64(total))
	}
	fmt.Printf("overall purity: %.1f%%\n", 100*float64(correct)/float64(ds.N()))

	// External quality metrics against the hidden truth.
	ct, err := repro.Evaluate(res.Best, ds, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adjusted Rand index: %.3f   normalized mutual information: %.3f\n",
		ct.AdjustedRandIndex(), ct.NormalizedMutualInformation())
}
