// Csvflow: the end-to-end real-data workflow — ingest a CSV with schema
// inference, hold out a test split, run the two-level model search on the
// training data, validate the selected model on the held-out rows, and emit
// the report and case assignments. Everything a practitioner would do with
// a fresh dataset.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	// Fabricate a "real" CSV: the protein workload exported to CSV with
	// 8% missing values, as a lab instrument might produce.
	dir, err := os.MkdirTemp("", "csvflow")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	csvPath := filepath.Join(dir, "assay.csv")
	if err := fabricateCSV(csvPath); err != nil {
		log.Fatal(err)
	}

	// 1. Ingest with schema inference.
	ds, err := repro.LoadDataset(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %s: %d rows, %d columns\n", filepath.Base(csvPath), ds.N(), ds.NumAttrs())
	for k := 0; k < ds.NumAttrs(); k++ {
		a := ds.Attr(k)
		fmt.Printf("  %-16s inferred %s", a.Name, a.Type)
		if a.Type == repro.Discrete {
			fmt.Printf(" %v", a.Levels)
		}
		fmt.Println()
	}

	// 2. Hold out 30% for validation.
	train, test, err := repro.SplitDataset(ds, 0.7, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsplit: %d training rows, %d held-out rows\n", train.N(), test.N())

	// 3. Two-level search: model forms × class counts.
	cfg := repro.DefaultSearchConfig()
	cfg.StartJList = []int{2, 4, 8}
	cfg.Tries = 2
	r, err := repro.Run(train, repro.WithSearchConfig(cfg), repro.WithModelSearch())
	if err != nil {
		log.Fatal(err)
	}
	res := r.Models
	fmt.Printf("\nmodel-level search:\n")
	for _, ps := range res.PerSpec {
		fmt.Printf("  %-12s %2d classes  score %.1f\n",
			ps.Name, ps.Result.Best.J(), ps.Result.Best.Score())
	}
	fmt.Printf("selected: %s with %d classes\n", res.BestSpec, res.Best.J())

	// 4. Validate on the held-out rows with the batch inference path.
	pred, err := repro.Predict(res.Best, test, repro.PredictConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheld-out log-likelihood: %.1f (%.3f per row)\n", pred.LogLik, pred.LogLik/float64(test.N()))
	fmt.Printf("held-out sharpness: %.3f mean max membership\n", repro.MeanMaxMembership(res.Best, test))

	// 5. Report and case assignments.
	fmt.Println()
	fmt.Println(repro.BuildReport(res.Best, train))
	fmt.Println("first held-out case assignments:")
	if err := repro.WriteCases(os.Stdout, res.Best, test.Head(5), 0.1); err != nil {
		log.Fatal(err)
	}
}

// fabricateCSV writes the synthetic assay file.
func fabricateCSV(path string) error {
	spec := datagen.ProteinMixture()
	ds, _, err := spec.Generate(4000, 19)
	if err != nil {
		return err
	}
	if _, err := datagen.InjectMissing(ds, 0.08, 5); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Header.
	for k := 0; k < ds.NumAttrs(); k++ {
		if k > 0 {
			fmt.Fprint(f, ",")
		}
		fmt.Fprint(f, ds.Attr(k).Name)
	}
	fmt.Fprintln(f)
	for i := 0; i < ds.N(); i++ {
		for k := 0; k < ds.NumAttrs(); k++ {
			if k > 0 {
				fmt.Fprint(f, ",")
			}
			v := ds.Value(i, k)
			switch {
			case dataset.IsMissing(v) || math.IsNaN(v):
				fmt.Fprint(f, "NA")
			case ds.Attr(k).Type == repro.Discrete:
				fmt.Fprint(f, ds.Attr(k).Levels[int(v)])
			default:
				fmt.Fprintf(f, "%.5g", v)
			}
		}
		fmt.Fprintln(f)
	}
	return f.Close()
}
