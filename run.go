package repro

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/autoclass"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/pautoclass"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Run is the unified clustering entry point: every facade capability —
// sequential or parallel execution, model-spec selection, the two-level
// model search, checkpoint/resume, and instrumentation — is selected
// through functional options on one call.
//
//	res, err := repro.Run(ds)                                  // sequential, defaults
//	res, err := repro.Run(ds, repro.WithSearchConfig(cfg),
//	    repro.WithParallel(repro.ParallelConfig{Procs: 8}))    // P-AutoClass
//	res, err := repro.Run(ds, repro.WithModelSearch())         // two-level search
//
// Option combinations mirror the engine's real capabilities; impossible
// ones (e.g. WithModelSearch with WithParallel) are rejected with an error
// rather than silently ignored. The result is bitwise identical to the
// legacy entry point each combination replaces.
func Run(ds *Dataset, opts ...Option) (*Result, error) {
	rc := runConfig{search: DefaultSearchConfig()}
	for _, opt := range opts {
		opt(&rc)
	}
	if rc.chunkPath != "" {
		if ds != nil {
			return nil, errors.New("repro: WithChunkedData replaces the dataset argument; pass nil")
		}
		copts := ChunkOptions{}
		if rc.memBudget > 0 {
			copts.Mode = ChunkCached
			copts.MemoryBudget = rc.memBudget
		}
		cds, err := dataset.OpenChunked(rc.chunkPath, copts)
		if err != nil {
			return nil, err
		}
		defer cds.Close()
		ds = cds
	}
	if ds == nil {
		return nil, errors.New("repro: nil dataset")
	}
	if rc.searchPar != nil {
		// Applied after the option loop so WithSearchParallelism composes
		// with WithSearchConfig in either order.
		rc.search.SearchParallelism = *rc.searchPar
	}
	if rc.syncEvery != nil {
		// Same composition rule as WithSearchParallelism.
		rc.search.EM.SyncEvery = *rc.syncEvery
	}
	if err := rc.validate(); err != nil {
		return nil, err
	}
	if rc.models {
		return runModels(ds, rc)
	}
	if rc.par != nil {
		return runParallel(ds, rc)
	}
	return runSequential(ds, rc)
}

// Result is Run's outcome. Search is set unless WithModelSearch was given,
// in which case Models is. Stats carries timing (virtual fields only under
// a simulated Machine).
type Result struct {
	Search *SearchResult
	Models *ModelSearchResult
	Stats  ParallelStats
}

// Best returns the winning classification of whichever search ran.
func (r *Result) Best() *Classification {
	switch {
	case r == nil:
		return nil
	case r.Models != nil:
		return r.Models.Best
	case r.Search != nil:
		return r.Search.Best
	}
	return nil
}

// Option configures Run.
type Option func(*runConfig)

type runConfig struct {
	search     SearchConfig
	searchPar  *int
	syncEvery  *int
	correlated bool
	models     bool
	par        *ParallelConfig
	observer   *RunObserver
	profile    *Profile
	searchObs  SearchObserver
	ckptPath   string
	ckptEvery  int
	chunkPath  string
	memBudget  int64
}

// hybridGroups resolves how many concurrent variant groups a parallel run
// splits into: the SearchParallelism knob, capped by the rank budget.
// 1 means the classic single-group SPMD search.
func (rc *runConfig) hybridGroups() int {
	if rc.par == nil {
		return 1
	}
	v := rc.search.SearchWorkers()
	if v > rc.par.Procs {
		v = rc.par.Procs
	}
	return v
}

// WithSearchConfig replaces the default BIG_LOOP settings.
func WithSearchConfig(cfg SearchConfig) Option {
	return func(rc *runConfig) { rc.search = cfg }
}

// WithCorrelated models all real attributes jointly with a full-covariance
// Gaussian per class (AutoClass multi_normal_cn) instead of the default
// independent-attribute model.
func WithCorrelated() Option {
	return func(rc *runConfig) { rc.correlated = true }
}

// WithModelSearch runs AutoClass's full two-level search — every applicable
// model form × the BIG_LOOP — and reports the best across forms in
// Result.Models. Incompatible with WithCorrelated (the form ladder already
// includes the correlated spec), WithParallel and WithCheckpoint.
func WithModelSearch() Option {
	return func(rc *runConfig) { rc.models = true }
}

// WithSearchParallelism runs the BIG_LOOP's independent (start_j, try)
// variants on n concurrent workers instead of one at a time. The result is
// bitwise identical to the sequential search for every n — variants commit
// in schedule order regardless of completion order. n <= 1 keeps today's
// sequential loop; n < 0 uses GOMAXPROCS. Composes with WithSearchConfig in
// either order and with WithCheckpoint (resume may use a different n than
// the interrupted run). Combined with WithParallel, the rank budget splits
// into n communicator groups of Procs/n ranks each (Procs must be divisible
// by n; incompatible with a simulated Machine and with parallel
// WithCheckpoint).
func WithSearchParallelism(n int) Option {
	return func(rc *runConfig) { rc.searchPar = &n }
}

// WithSyncEvery sets the bounded-staleness schedule of a parallel run: each
// rank runs up to l local EM cycles on stale global parameters, folding its
// accumulated statistic deltas into the global model at the next Allreduce
// (a corrective merge, not an overwrite), cutting the per-cycle collective
// count by roughly 1/l. l <= 1 is the paper's fully synchronous path — the
// default, and the bitwise reference the relaxed mode is validated against.
// A drift bound (SearchConfig.EM.SyncDriftTol) forces an early global
// synchronization when any rank's log-likelihood drifts too far from the
// last synced value. Only the Full parallel strategy relaxes; sequential
// runs and the WtsOnly baseline ignore the knob. Composes with
// WithSearchConfig in either order and with WithCheckpoint (snapshots land
// on sync points, so resume stays exact).
func WithSyncEvery(l int) Option {
	return func(rc *runConfig) { rc.syncEvery = &l }
}

// WithParallel runs the search as P-AutoClass across pc.Procs SPMD ranks.
// The result is identical to the sequential search of the same
// SearchConfig up to the paper's parallel priors formulation; all ranks
// produce the same classification and rank 0's is returned.
func WithParallel(pc ParallelConfig) Option {
	return func(rc *runConfig) { rc.par = &pc }
}

// WithObserver installs a RunObserver: per-rank metrics and trace events
// for every phase and collective, exportable as Chrome traces, JSONL
// events, or metrics JSON. The observer must have been created for the
// run's rank count — NewRunObserver(1) for a sequential run,
// NewRunObserver(pc.Procs) for a parallel one. Observation never perturbs
// the search trajectory.
func WithObserver(o *RunObserver) Option {
	return func(rc *runConfig) { rc.observer = o }
}

// WithSearchObserver streams try lifecycle events — claimed, per-cycle
// progress, converged/duplicate/early-stopped commits with tries
// done/total and best-so-far score — to o while the search runs: the hook
// behind live progress reporting (the daemon's /v1/jobs/{id}/progress, the
// CLI's progress line). Observation is notification-only and never
// perturbs the trajectory; with WithSearchParallelism > 1 (or a hybrid
// parallel run) events arrive from several goroutines, so o must be safe
// for concurrent use. In a parallel run events are emitted once (rank 0),
// not once per rank. Incompatible with WithModelSearch.
func WithSearchObserver(o SearchObserver) Option {
	return func(rc *runConfig) { rc.searchObs = o }
}

// WithProfile accumulates per-phase wall time (update_wts /
// update_parameters / update_approximations) into p. In a parallel run
// only rank 0 reports, keeping phase totals comparable to a sequential
// run's.
func WithProfile(p *Profile) Option {
	return func(rc *runConfig) { rc.profile = p }
}

// WithChunkedData trains out of core: instead of a materialized dataset
// (pass nil), Run opens the chunk file at path — written by
// WriteChunkedDataset or streamed by a CSV ChunkWriter sink — as a
// chunk-backed dataset, runs the search over its chunk plane, and closes it
// on return. By default the file is memory-mapped (falling back to a
// bounded pread cache where mapping is unavailable); combine with
// WithMemoryBudget to cap resident bytes explicitly. The search trajectory
// is bitwise identical to a run over the materialized rows for every
// backing and chunk size. Requires the Blocked kernels (the default) and a
// fully synchronous schedule (SyncEvery <= 1); the WtsOnly parallel
// strategy, which gathers the full weight matrix to a dataset replica on
// rank 0, is rejected.
func WithChunkedData(path string) Option {
	return func(rc *runConfig) { rc.chunkPath = path }
}

// WithMemoryBudget bounds the resident bytes of a WithChunkedData run: the
// chunk file is served through a bounded cache that pins at most
// budget/chunkSpan chunks in RAM (never below 2) and faults the rest on
// demand. Residency policy affects timing only, never results.
func WithMemoryBudget(budget int64) Option {
	return func(rc *runConfig) { rc.memBudget = budget }
}

// WithCheckpoint makes the search resumable: progress persists to path and
// a rerun with identical arguments continues where it stopped, producing
// the bitwise-identical result to an uninterrupted run. every sets the
// cycles between mid-try snapshots in a parallel run (<= 0 snapshots only
// at try boundaries); the sequential path checkpoints at try boundaries
// regardless.
func WithCheckpoint(path string, every int) Option {
	return func(rc *runConfig) { rc.ckptPath = path; rc.ckptEvery = every }
}

func (rc *runConfig) validate() error {
	if rc.models {
		switch {
		case rc.correlated:
			return errors.New("repro: WithModelSearch already searches the correlated form; drop WithCorrelated")
		case rc.par != nil:
			return errors.New("repro: WithModelSearch does not support WithParallel")
		case rc.ckptPath != "":
			return errors.New("repro: WithModelSearch does not support WithCheckpoint")
		case rc.observer != nil || rc.profile != nil:
			return errors.New("repro: WithModelSearch does not support WithObserver/WithProfile")
		case rc.searchObs != nil:
			return errors.New("repro: WithModelSearch does not support WithSearchObserver")
		}
	}
	if rc.par != nil {
		if rc.par.Procs < 1 {
			return fmt.Errorf("repro: %d procs", rc.par.Procs)
		}
		if rc.correlated {
			return errors.New("repro: WithCorrelated is not supported with WithParallel")
		}
		if rc.ckptPath != "" && rc.par.Strategy != Full {
			return errors.New("repro: parallel WithCheckpoint requires the Full strategy")
		}
		if v := rc.hybridGroups(); v > 1 {
			if rc.par.Machine != nil {
				return errors.New("repro: WithSearchParallelism > 1 cannot charge a simulated Machine across concurrent variant groups")
			}
			if rc.ckptPath != "" {
				return errors.New("repro: parallel WithCheckpoint does not support WithSearchParallelism > 1")
			}
			if rc.par.Procs%v != 0 {
				return fmt.Errorf("repro: rank budget %d not divisible by %d variant groups", rc.par.Procs, v)
			}
		}
	}
	if rc.observer != nil {
		want := 1
		if rc.par != nil {
			want = rc.par.Procs
		}
		if rc.observer.Ranks() != want {
			return fmt.Errorf("repro: observer built for %d ranks, run has %d", rc.observer.Ranks(), want)
		}
	}
	if rc.ckptPath == "" && rc.ckptEvery != 0 {
		return errors.New("repro: WithCheckpoint needs a non-empty path")
	}
	if rc.syncEvery != nil && *rc.syncEvery < 0 {
		return fmt.Errorf("repro: WithSyncEvery(%d)", *rc.syncEvery)
	}
	if rc.memBudget < 0 {
		return fmt.Errorf("repro: WithMemoryBudget(%d)", rc.memBudget)
	}
	if rc.memBudget > 0 && rc.chunkPath == "" {
		return errors.New("repro: WithMemoryBudget needs WithChunkedData")
	}
	if rc.chunkPath != "" {
		// The engine rejects these too (a caller may hand Run an already
		// chunk-backed dataset), but failing here names the option.
		switch {
		case rc.search.EM.Kernels != Blocked:
			return errors.New("repro: WithChunkedData requires the Blocked kernels")
		case rc.search.EM.EffectiveSyncEvery() > 1:
			return errors.New("repro: WithChunkedData does not support WithSyncEvery > 1")
		case rc.par != nil && rc.par.Strategy == WtsOnly:
			return errors.New("repro: the WtsOnly strategy requires a materialized dataset")
		}
	}
	return nil
}

func runModels(ds *Dataset, rc runConfig) (*Result, error) {
	start := time.Now()
	sum := ds.Summarize()
	ms, err := autoclass.SearchModels(ds, autoclass.StandardSpecCandidates(ds, sum), rc.search, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Models: ms, Stats: ParallelStats{WallSeconds: time.Since(start).Seconds()}}, nil
}

func runSequential(ds *Dataset, rc runConfig) (*Result, error) {
	start := time.Now()
	spec := model.DefaultSpec(ds)
	if rc.correlated {
		spec = model.CorrelatedSpec(ds)
	}
	var co autoclass.CycleObserver
	if rc.observer != nil {
		co = rc.observer.Rank(0)
	}
	var res *SearchResult
	var err error
	if rc.ckptPath != "" {
		res, err = autoclass.SearchWithCheckpointFileObserved(ds, spec, rc.search, nil, rc.ckptPath, rc.profile, co, rc.searchObs)
	} else {
		res, err = autoclass.SearchObserved(ds, spec, rc.search, nil, rc.profile, co, rc.searchObs)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Search: res, Stats: ParallelStats{WallSeconds: time.Since(start).Seconds()}}, nil
}

func runParallel(ds *Dataset, rc runConfig) (*Result, error) {
	if v := rc.hybridGroups(); v > 1 {
		return runHybrid(ds, rc, v)
	}
	pc := *rc.par
	var res *SearchResult
	stats := &ParallelStats{}
	start := time.Now()
	body := func(c *mpi.Comm) error {
		opts := pautoclass.Options{EM: rc.search.EM, Strategy: pc.Strategy}
		if pc.Machine != nil {
			clk, err := simnet.NewClock(*pc.Machine)
			if err != nil {
				return err
			}
			opts.Clock = clk
		}
		// The observer-wiring bugfix: the legacy ClusterParallel dropped
		// Obs/Profile on the floor unless callers reached into
		// internal/pautoclass. pautoclass.Search's install() binds the
		// observer to the communicator and the virtual clock.
		if rc.observer != nil {
			opts.Obs = rc.observer.Rank(c.Rank())
			if pc.Machine != nil && c.Rank() == 0 {
				rc.observer.SetMachineLabel(pc.Machine.Name)
			}
		}
		if rc.profile != nil && c.Rank() == 0 {
			opts.Profile = rc.profile
		}
		// Handed to every rank; pautoclass emits on rank 0 only.
		opts.SearchObs = rc.searchObs
		var r *SearchResult
		var err error
		if rc.ckptPath != "" {
			r, err = pautoclass.SearchCheckpointed(c, ds, model.DefaultSpec(ds), rc.search, opts,
				pautoclass.Checkpoint{Path: rc.ckptPath, Every: rc.ckptEvery})
		} else {
			r, err = pautoclass.Search(c, ds, model.DefaultSpec(ds), rc.search, opts)
		}
		if err != nil {
			return err
		}
		if opts.Clock != nil {
			if err := opts.Clock.SyncBarrier(c); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			res = r
			if opts.Clock != nil {
				stats.VirtualSeconds = opts.Clock.Elapsed()
				stats.VirtualCommSeconds = opts.Clock.CommSeconds()
			}
		}
		return nil
	}
	rcfg := mpi.RunConfig{OpDeadline: pc.OpDeadline}
	if pc.SendRetries > 0 {
		rcfg.Retry = mpi.RetryPolicy{MaxAttempts: pc.SendRetries}
	}
	var err error
	if pc.UseTCP {
		err = mpi.RunTCPWith(pc.Procs, rcfg, body)
	} else {
		err = mpi.RunWith(pc.Procs, rcfg, body)
	}
	if err != nil {
		return nil, err
	}
	stats.WallSeconds = time.Since(start).Seconds()
	return &Result{Search: res, Stats: *stats}, nil
}

// runHybrid splits the parallel rank budget into v concurrent variant
// groups (see pautoclass.SearchHybrid). Validation has already rejected the
// combinations the hybrid path cannot honor (simulated Machine, parallel
// checkpoint, indivisible budget).
func runHybrid(ds *Dataset, rc runConfig, v int) (*Result, error) {
	pc := *rc.par
	start := time.Now()
	ranksPer := pc.Procs / v
	rcfg := mpi.RunConfig{OpDeadline: pc.OpDeadline}
	if pc.SendRetries > 0 {
		rcfg.Retry = mpi.RetryPolicy{MaxAttempts: pc.SendRetries}
	}
	optsFor := func(group, rank int) pautoclass.Options {
		opts := pautoclass.Options{EM: rc.search.EM, Strategy: pc.Strategy}
		if rc.observer != nil {
			// Global rank = group-major flattening, so the observer built
			// for Procs ranks sees every rank exactly once.
			opts.Obs = rc.observer.Rank(group*ranksPer + rank)
		}
		if rc.profile != nil && rank == 0 {
			// Each group's rank 0 folds its tries into the shared profile
			// (Profile is mutex-protected), keeping phase totals comparable
			// to a sequential run over all tries.
			opts.Profile = rc.profile
		}
		return opts
	}
	res, err := pautoclass.SearchHybrid(ds, model.DefaultSpec(ds), rc.search,
		pautoclass.HybridConfig{Procs: pc.Procs, Variants: v, UseTCP: pc.UseTCP, Run: rcfg,
			SearchObs: rc.searchObs}, optsFor)
	if err != nil {
		return nil, err
	}
	return &Result{Search: res, Stats: ParallelStats{WallSeconds: time.Since(start).Seconds()}}, nil
}

// RunObserver collects per-rank metrics and trace events of a Run (see
// internal/obs): counters for cycles, collectives and bytes, phase-level
// trace spans, Chrome trace / JSONL / metrics JSON export, and the
// comm-vs-compute Breakdown.
type RunObserver = obs.Run

// NewRunObserver creates an observer for a run with the given rank count
// (1 for a sequential run).
func NewRunObserver(procs int) *RunObserver { return obs.NewRun(procs) }

// SearchObserver receives try lifecycle events (use with
// WithSearchObserver). Implementations must be notification-only and, for
// parallel searches, safe for concurrent use.
type SearchObserver = autoclass.SearchObserver

// TryEvent is one search lifecycle notification delivered to a
// SearchObserver.
type TryEvent = autoclass.TryEvent

// TryEventKind labels a TryEvent.
type TryEventKind = autoclass.TryEventKind

// Try lifecycle event kinds.
const (
	// TryClaimed fires when a worker claims a variant.
	TryClaimed = autoclass.TryClaimed
	// TryCycle fires after each EM cycle of a running try.
	TryCycle = autoclass.TryCycle
	// TryConverged fires when a try commits as a kept result.
	TryConverged = autoclass.TryConverged
	// TryDuplicate fires when a try commits as a rediscovered optimum.
	TryDuplicate = autoclass.TryDuplicate
	// TryEarlyStopped fires when basin early termination cut a try.
	TryEarlyStopped = autoclass.TryEarlyStopped
)

// Profile accumulates named phase wall times (use with WithProfile).
type Profile = trace.Profile

// NewProfile returns an empty phase profile.
func NewProfile() *Profile { return trace.New() }

// Checkpoint is the versioned classification snapshot: Save/Load round-trip
// a fitted classification and, for mid-search snapshots, its SearchPoint.
type Checkpoint = autoclass.Checkpoint

// KernelMode selects the E/M-step implementation (SearchConfig.EM.Kernels).
type KernelMode = autoclass.KernelMode

// Kernel modes.
const (
	// Blocked runs the columnar blocked kernels (the default, fastest).
	Blocked = autoclass.Blocked
	// Reference runs the per-row oracle the blocked kernels are verified
	// against.
	Reference = autoclass.Reference
)

// Granularity selects how update_parameters exchanges statistics
// (SearchConfig.EM.Granularity).
type Granularity = autoclass.Granularity

// Granularities.
const (
	// PerTerm reduces once per (class, term) pair — the paper's baseline.
	PerTerm = autoclass.PerTerm
	// Packed reduces every class's statistics in one buffer — the paper's
	// §3.2 optimization.
	Packed = autoclass.Packed
)

// Prediction is the batch scoring result of Predict: per-case posterior
// memberships (row-major N×J), MAP classes, and the total held-out
// log-likelihood.
type Prediction = autoclass.Prediction

// PredictConfig tunes Predict (zero value: blocked kernels, one worker).
type PredictConfig = autoclass.PredictConfig

// Predict scores every row of ds under a fitted classification — the batch
// inference path. It runs on the blocked kernels by default, shards rows
// across PredictConfig.Parallelism workers, and is safe for concurrent
// calls on one classification; results are bitwise identical for every
// Parallelism value.
func Predict(cls *Classification, ds *Dataset, cfg PredictConfig) (*Prediction, error) {
	if cls == nil || ds == nil {
		return nil, errors.New("repro: nil classification or dataset")
	}
	return autoclass.Predict(cls, ds, cfg)
}

// Predictor is a reusable batch scorer over one fitted classification: the
// per-(class, term) kernels, worker scratch and result buffers are cached
// across calls, so a serving loop over same-shaped batches allocates
// nothing in steady state. A Predictor is NOT safe for concurrent use —
// build one per goroutine, or call Predict, which does exactly that.
type Predictor = autoclass.Predictor

// NewPredictor validates the configuration and builds a reusable scorer.
func NewPredictor(cls *Classification, cfg PredictConfig) (*Predictor, error) {
	if cls == nil {
		return nil, errors.New("repro: nil classification")
	}
	return autoclass.NewPredictor(cls, cfg)
}

// FoldRowLogLik reduces per-row log-evidence values (Prediction.RowLL,
// populated under PredictConfig.RowLogLik) to the exact LogLik a standalone
// Predict over those rows would report — the same shard grid and ascending
// fold order, so slicing a coalesced batch back into its requests loses
// nothing bitwise.
func FoldRowLogLik(rowLL []float64) float64 { return autoclass.FoldRowLogLik(rowLL) }
