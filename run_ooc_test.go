package repro

import (
	"path/filepath"
	"testing"
)

// writeChunkFile writes ds to a temp chunk file and returns its path.
func writeChunkFile(t *testing.T, ds *Dataset, chunkRows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rows.chunks")
	if err := WriteChunkedDataset(path, ds, chunkRows); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunWithChunkedData: an out-of-core run over the chunk file — with
// and without a resident-byte budget — reproduces the in-memory search
// bit for bit, sequential and parallel alike.
func TestRunWithChunkedData(t *testing.T) {
	ds := runTestDataset(t, 1024)
	cfg := runQuickCfg()
	path := writeChunkFile(t, ds, 512)

	want, err := Run(ds, WithSearchConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(nil, WithChunkedData(path), WithSearchConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, got.Search, want.Search)

	// A budget that holds only a couple of chunks resident changes paging,
	// never results.
	tight, err := Run(nil, WithChunkedData(path), WithMemoryBudget(64<<10), WithSearchConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, tight.Search, want.Search)

	// 1024 rows across 2 ranks: the aligned partition coincides with the
	// materialized block partition, so the SPMD result matches bitwise too.
	wantPar, err := Run(ds, WithSearchConfig(cfg), WithParallel(ParallelConfig{Procs: 2}))
	if err != nil {
		t.Fatal(err)
	}
	gotPar, err := Run(nil, WithChunkedData(path), WithMemoryBudget(64<<10),
		WithSearchConfig(cfg), WithParallel(ParallelConfig{Procs: 2}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, gotPar.Search, wantPar.Search)
}

func TestRunChunkedOptionValidation(t *testing.T) {
	ds := runTestDataset(t, 300)
	path := writeChunkFile(t, ds, 256)
	refCfg := runQuickCfg()
	refCfg.EM.Kernels = Reference
	cases := []struct {
		name string
		ds   *Dataset
		opts []Option
	}{
		{"chunked with dataset", ds, []Option{WithChunkedData(path)}},
		{"budget without chunked", ds, []Option{WithMemoryBudget(1 << 20)}},
		{"negative budget", nil, []Option{WithChunkedData(path), WithMemoryBudget(-1)}},
		{"chunked+reference kernels", nil, []Option{WithChunkedData(path), WithSearchConfig(refCfg)}},
		{"chunked+stale sync", nil, []Option{WithChunkedData(path), WithSyncEvery(3),
			WithParallel(ParallelConfig{Procs: 2})}},
		{"chunked+wtsonly", nil, []Option{WithChunkedData(path),
			WithParallel(ParallelConfig{Procs: 2, Strategy: WtsOnly})}},
		{"missing chunk file", nil, []Option{WithChunkedData(filepath.Join(t.TempDir(), "nope.chunks"))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.ds, tc.opts...); err == nil {
				t.Errorf("%s: accepted", tc.name)
			}
		})
	}
}

// TestChunkedFacadeRoundTrip: the re-exported writer/opener round-trip a
// dataset, and the chunk-backed dataset serves the reporting helpers
// (which gather rows through RowTo, never Row).
func TestChunkedFacadeRoundTrip(t *testing.T) {
	ds := runTestDataset(t, 700)
	path := writeChunkFile(t, ds, 0) // 0 = DefaultChunkRows
	cds, err := OpenChunkedDataset(path, ChunkOptions{Mode: ChunkInMemory})
	if err != nil {
		t.Fatal(err)
	}
	defer cds.Close()
	if !cds.Equal(ds) {
		t.Fatal("chunk file round-trip changed the dataset")
	}
	r, err := Run(ds, WithSearchConfig(runQuickCfg()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ClassSizes(r.Best(), cds), ClassSizes(r.Best(), ds); len(got) != len(want) {
		t.Fatalf("class sizes over chunked: %v want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("class sizes over chunked: %v want %v", got, want)
			}
		}
	}
	if got, want := HeldoutLogLik(r.Best(), cds), HeldoutLogLik(r.Best(), ds); got != want {
		t.Fatalf("heldout loglik over chunked %v, materialized %v", got, want)
	}
	p, err := Predict(r.Best(), cds, PredictConfig{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Predict(r.Best(), ds, PredictConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p.LogLik != q.LogLik {
		t.Fatalf("chunked Predict loglik %v, materialized %v", p.LogLik, q.LogLik)
	}
}
