#!/bin/sh
# serve_smoke.sh [path-to-pautoclassd] — end-to-end daemon smoke test.
#
# Starts pautoclassd on a scratch state directory, submits a training job
# over HTTP, polls it to completion, batch-scores the training rows
# against the fitted model, checks /metrics and /debug/trace, and shuts
# the daemon down. Needs curl and jq.
set -eu

BIN="${1:-/tmp/pautoclassd}"
ADDR="127.0.0.1:${SMOKE_PORT:-8931}"
DIR="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

"$BIN" -addr "$ADDR" -dir "$DIR/state" -procs 2 -every 2 &
PID=$!

# Wait for the daemon to come up.
for i in $(seq 1 100); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    [ "$i" = 100 ] && { echo "daemon never became healthy" >&2; exit 1; }
    sleep 0.1
done

# Two well-separated clusters over two real attributes.
jq -n '{
  name: "smoke",
  attrs: [{name: "x", type: "real"}, {name: "y", type: "real"}],
  rows: ([range(200)] | map([(. % 7 + (if . % 2 == 0 then 50 else 0 end)), (. % 11)])),
  search: {start_j_list: [2, 3], tries: 1, max_cycles: 20, parallelism: 1}
}' > "$DIR/job.json"

ID=$(curl -sf -X POST --data-binary @"$DIR/job.json" "http://$ADDR/v1/jobs" | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || { echo "job submission failed" >&2; exit 1; }

for i in $(seq 1 300); do
    STATE=$(curl -sf "http://$ADDR/v1/jobs/$ID" | jq -r .state)
    case "$STATE" in
        done) break ;;
        failed) curl -s "http://$ADDR/v1/jobs/$ID" >&2; exit 1 ;;
    esac
    [ "$i" = 300 ] && { echo "job stuck in $STATE" >&2; exit 1; }
    sleep 0.1
done
curl -sf "http://$ADDR/v1/jobs/$ID" | jq -e '.j >= 2 and .model_id == .id' >/dev/null

jq '{rows: .rows, parallelism: 2}' "$DIR/job.json" > "$DIR/predict.json"
curl -sf -X POST --data-binary @"$DIR/predict.json" \
    "http://$ADDR/v1/models/$ID/predict" \
    | jq -e '.n == 200 and (.map | length) == 200 and (.memberships[0] | add) > 0.999' >/dev/null

curl -sf "http://$ADDR/metrics" \
    | jq -e '.server.counters["serve.jobs.done"] >= 1
         and .server.counters["serve.predict.rows"] == 200
         and .run.counters["engine.cycles"] >= 1' >/dev/null

curl -sf "http://$ADDR/debug/trace" | jq -e '.traceEvents | length > 0' >/dev/null

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "serve smoke OK (job $ID)"
