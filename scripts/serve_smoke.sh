#!/bin/sh
# serve_smoke.sh [path-to-pautoclassd] — end-to-end daemon smoke test.
#
# Starts pautoclassd on a scratch state directory, submits a training job
# over HTTP, polls it (and its live /progress view) to completion,
# batch-scores the training rows against the fitted model, checks the
# health probes, the Prometheus exposition on /metrics, the JSON metrics
# on /metrics.json and /debug/trace, and shuts the daemon down. Needs
# curl, jq and awk.
set -eu

BIN="${1:-/tmp/pautoclassd}"
ADDR="127.0.0.1:${SMOKE_PORT:-8931}"
DIR="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

"$BIN" -addr "$ADDR" -dir "$DIR/state" -procs 2 -every 2 -log-format json &
PID=$!

# Wait for the daemon to come up, then check both probes.
for i in $(seq 1 100); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    [ "$i" = 100 ] && { echo "daemon never became healthy" >&2; exit 1; }
    sleep 0.1
done
curl -sf "http://$ADDR/healthz" | jq -e '.status == "ok"' >/dev/null
curl -sf "http://$ADDR/readyz" | jq -e '.ready == true' >/dev/null

# Two well-separated clusters over two real attributes.
jq -n '{
  name: "smoke",
  attrs: [{name: "x", type: "real"}, {name: "y", type: "real"}],
  rows: ([range(200)] | map([(. % 7 + (if . % 2 == 0 then 50 else 0 end)), (. % 11)])),
  search: {start_j_list: [2, 3], tries: 1, max_cycles: 20, parallelism: 1}
}' > "$DIR/job.json"

ID=$(curl -sf -X POST --data-binary @"$DIR/job.json" "http://$ADDR/v1/jobs" | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || { echo "job submission failed" >&2; exit 1; }

# Poll the job and its live progress together: tries_done must be
# monotonically non-decreasing and never exceed tries_total.
LAST_DONE=0
for i in $(seq 1 300); do
    STATE=$(curl -sf "http://$ADDR/v1/jobs/$ID" | jq -r .state)
    PROG=$(curl -sf "http://$ADDR/v1/jobs/$ID/progress")
    DONE=$(echo "$PROG" | jq -r .tries_done)
    TOTAL=$(echo "$PROG" | jq -r .tries_total)
    [ "$DONE" -ge "$LAST_DONE" ] || { echo "tries_done regressed $LAST_DONE -> $DONE" >&2; exit 1; }
    [ "$DONE" -le "$TOTAL" ] || { echo "tries_done $DONE exceeds tries_total $TOTAL" >&2; exit 1; }
    LAST_DONE=$DONE
    case "$STATE" in
        done) break ;;
        failed) curl -s "http://$ADDR/v1/jobs/$ID" >&2; exit 1 ;;
    esac
    [ "$i" = 300 ] && { echo "job stuck in $STATE" >&2; exit 1; }
    sleep 0.1
done
curl -sf "http://$ADDR/v1/jobs/$ID" | jq -e '.j >= 2 and .model_id == .id' >/dev/null
curl -sf "http://$ADDR/v1/jobs/$ID/progress" \
    | jq -e '.state == "done" and .tries_done == .tries_total and .best_score != null' >/dev/null

jq '{rows: .rows, parallelism: 2}' "$DIR/job.json" > "$DIR/predict.json"
curl -sf -X POST --data-binary @"$DIR/predict.json" \
    "http://$ADDR/v1/models/$ID/predict" \
    | jq -e '.n == 200 and (.map | length) == 200 and (.memberships[0] | add) > 0.999' >/dev/null

# JSON metrics (legacy shape, now at /metrics.json).
curl -sf "http://$ADDR/metrics.json" \
    | jq -e '.server.counters["serve.jobs.done"] >= 1
         and .server.counters["serve.predict.rows"] == 200
         and .run.counters["engine.cycles"] >= 1' >/dev/null

# Prometheus exposition on /metrics: families must be unique and sorted,
# the page must terminate with # EOF, and the per-route HTTP latency
# histogram and the training run's search metrics must be present.
curl -sf "http://$ADDR/metrics" > "$DIR/metrics.prom"
awk '
    /^# TYPE / {
        fam = $3
        if (fam in seen) { print "duplicate metric family: " fam; exit 1 }
        if (prev != "" && fam <= prev) { print "unsorted metric family: " fam " after " prev; exit 1 }
        seen[fam] = 1; prev = fam
    }
    END { if (prev == "") { print "no metric families in exposition"; exit 1 } }
' "$DIR/metrics.prom"
grep -q '^# EOF$' "$DIR/metrics.prom" || { echo "exposition missing # EOF" >&2; exit 1; }
grep 'http_request_seconds_bucket{' "$DIR/metrics.prom" | grep -q 'route="GET /healthz"' \
    || { echo "no per-route latency histogram in exposition" >&2; exit 1; }
grep -q '^search_tries_done{' "$DIR/metrics.prom" \
    || { echo "no search progress gauge in exposition" >&2; exit 1; }
CT=$(curl -sf -o /dev/null -w '%{content_type}' "http://$ADDR/metrics")
case "$CT" in
    application/openmetrics-text*) ;;
    *) echo "unexpected /metrics content type: $CT" >&2; exit 1 ;;
esac

curl -sf "http://$ADDR/debug/trace" | jq -e '.traceEvents | length > 0' >/dev/null

# Deprecated bare job-ID predict must carry the Deprecation header.
curl -sf -D "$DIR/headers" -X POST --data-binary @"$DIR/predict.json" \
    "http://$ADDR/v1/models/$ID/predict" >/dev/null
grep -qi '^deprecation: true' "$DIR/headers" \
    || { echo "job-ID predict missing Deprecation header" >&2; exit 1; }

# Registry flow: publish the job as a named model, list it, predict
# against it — first a cache miss, then a byte-identical cache hit.
jq -n --arg job "$ID" '{id: "smoke-model", job_id: $job}' > "$DIR/publish.json"
curl -sf -X POST --data-binary @"$DIR/publish.json" "http://$ADDR/v1/models" \
    | jq -e '.id == "smoke-model" and .version.version == 1 and .active == 1
         and (.version.checksum | length) == 64' >/dev/null
curl -sf "http://$ADDR/v1/models" \
    | jq -e '.models | length == 1 and .[0].id == "smoke-model"' >/dev/null
curl -sf -D "$DIR/h1" -X POST --data-binary @"$DIR/predict.json" \
    "http://$ADDR/v1/models/smoke-model/predict" > "$DIR/p1"
curl -sf -D "$DIR/h2" -X POST --data-binary @"$DIR/predict.json" \
    "http://$ADDR/v1/models/smoke-model/predict" > "$DIR/p2"
grep -qi '^x-cache: miss' "$DIR/h1" || { echo "first model predict not a cache miss" >&2; exit 1; }
grep -qi '^x-cache: hit' "$DIR/h2" || { echo "repeat model predict not a cache hit" >&2; exit 1; }
cmp -s "$DIR/p1" "$DIR/p2" || { echo "cache replay not byte-identical" >&2; exit 1; }
grep -qi '^deprecation:' "$DIR/h1" \
    && { echo "registered-model predict carries Deprecation" >&2; exit 1; }
curl -sf "http://$ADDR/v1/models/smoke-model" \
    | jq -e '.active == 1 and .cache.hits >= 1 and .cache.misses >= 1' >/dev/null

# Error envelope: stable code, message, and the legacy string field.
curl -s "http://$ADDR/v1/jobs/999999" \
    | jq -e '.error.code == "not_found" and (.error.message | length) > 0
         and .error_string == .error.message' >/dev/null

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "serve smoke OK (job $ID)"
