#!/bin/sh
# serve_load_smoke.sh — predict-tier load smoke (EXPERIMENTS.md, SERVE recipe).
#
# Runs the benchserve harness on a small workload: train a model, publish
# it into the registry, restart the predict tier on the same state
# directory with rank-sharded workers, then drive sustained concurrent
# predict traffic while byte-checking every 200 response against the
# solo-request baselines. The emitted report must show the bitwise
# self-check passed, finite ordered percentiles, and real throughput.
# Needs jq. The committed BENCH_serve.json records the reference numbers
# (`make bench-serve`).
set -eu

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
OUT="$DIR/BENCH_serve.json"

go run ./cmd/benchserve \
    -train-rows 150 -predict-rows 40 -bodies 3 \
    -clients 4 -per-client 8 -predict-procs 2 \
    -o "$OUT"

jq . "$OUT"
jq -e '.bitwise_match == true' "$OUT" >/dev/null \
    || { echo "bitwise self-check failed: concurrent responses diverged" >&2; exit 1; }
jq -e '.requests > 0 and .qps > 0' "$OUT" >/dev/null \
    || { echo "no throughput measured" >&2; exit 1; }
# Percentiles must be finite, positive and ordered (NaN/Inf encode as
# null or huge numbers; a self-comparison catches null, the bound Inf).
jq -e '(.p50_ms > 0) and (.p99_ms >= .p50_ms) and (.p99_ms < 1e9)' "$OUT" >/dev/null \
    || { echo "latency percentiles broken or non-finite" >&2; exit 1; }
jq -e '.bytes_per_req > 0' "$OUT" >/dev/null \
    || { echo "no response bytes accounted" >&2; exit 1; }
# Cycled bodies repeat across clients, so the response cache must have
# answered part of the traffic.
jq -e '.cache_hit_rate > 0' "$OUT" >/dev/null \
    || { echo "response cache never hit" >&2; exit 1; }

echo "serve load smoke OK ($(jq -r '"\(.requests) reqs, p99 \(.p99_ms)ms, \(.qps | floor) qps"' "$OUT"))"
