#!/bin/sh
# ooc_smoke.sh — out-of-core chunked data plane smoke test.
#
# Two legs. First, the benchooc harness on a small workload: 10240 rows
# in 512-row chunks with the bounded cache capped at 2 resident chunks
# (a tenth of the file). The emitted report must show the cache actually
# paging (loads and evictions both nonzero), residency never above the
# cap, near-zero mallocs per chunk visit, and a training trajectory
# bitwise identical to an in-memory load of the same file. Second, the
# end-to-end CLI path: datagen writes a .chunks file, and a 2-rank
# pautoclass run over it under a 64KiB budget must print exactly the
# same report (wall-time line aside) as the same search over the
# materialized text dataset. Needs jq.
set -eu

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

# Leg 1: the measurement harness and its self-check.
go run ./cmd/benchooc -rows 10240 -chunk-rows 512 -cycles 2 \
	-o "$DIR/BENCH_ooc.json" | tee /dev/stderr
jq . "$DIR/BENCH_ooc.json" >/dev/null
jq -e '.bitwise_match' "$DIR/BENCH_ooc.json" >/dev/null || {
	echo "ooc-smoke: bounded-cache trajectory diverged from the in-memory load" >&2
	exit 1
}
jq -e '.num_chunks == 20 and .resident_chunks == 2' "$DIR/BENCH_ooc.json" >/dev/null || {
	echo "ooc-smoke: unexpected chunk/residency geometry" >&2
	exit 1
}
jq -e '.cache.high_water <= .resident_chunks' "$DIR/BENCH_ooc.json" >/dev/null || {
	echo "ooc-smoke: cache residency exceeded its cap" >&2
	exit 1
}
jq -e '.cache.loads > 0 and .cache.evictions > 0' "$DIR/BENCH_ooc.json" >/dev/null || {
	echo "ooc-smoke: cache never faulted — the budget is not binding" >&2
	exit 1
}
jq -e '.resident_ceiling_bytes * 5 <= .file_bytes' "$DIR/BENCH_ooc.json" >/dev/null || {
	echo "ooc-smoke: resident ceiling is not a small fraction of the file" >&2
	exit 1
}
jq -e '.train_rows_per_sec > 0 and .predict_rows_per_sec > 0' "$DIR/BENCH_ooc.json" >/dev/null || {
	echo "ooc-smoke: throughput missing from the report" >&2
	exit 1
}
jq -e '.mallocs_per_chunk_visit <= 2' "$DIR/BENCH_ooc.json" >/dev/null || {
	echo "ooc-smoke: steady-state chunk loop allocates" >&2
	exit 1
}

# Leg 2: the CLI path end to end. The same search over the chunk file
# (tight budget, 2 ranks) and over the materialized dataset must print
# identical reports; only the wall-time line may differ.
go run ./cmd/datagen -workload paper -n 2048 -seed 7 -o "$DIR/data.txt"
go run ./cmd/datagen -workload paper -n 2048 -seed 7 -o "$DIR/data.chunks" -chunk-rows 512
go run ./cmd/pautoclass -data "$DIR/data.txt" -procs 2 -start-j 4 \
	-tries 2 -max-cycles 30 | grep -v "wall time" >"$DIR/mat.out"
go run ./cmd/pautoclass -chunked "$DIR/data.chunks" -memory-budget 64KiB \
	-procs 2 -start-j 4 -tries 2 -max-cycles 30 | grep -v "wall time" >"$DIR/ooc.out"
diff -u "$DIR/mat.out" "$DIR/ooc.out" || {
	echo "ooc-smoke: out-of-core CLI run diverged from the materialized run" >&2
	exit 1
}
cat "$DIR/ooc.out"

echo "ooc-smoke: OK"
