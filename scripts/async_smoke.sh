#!/bin/sh
# async_smoke.sh — bounded-staleness quality-parity smoke test.
#
# Runs the same 4-rank search twice on the paper's synthetic workload:
# fully synchronous (-sync-every 1) and with four local cycles per global
# merge (-sync-every 4). The held-in log-likelihood of the two fitted
# models must agree within 2% relative — the EXPERIMENTS.md ASYNC parity
# bound — and the quick comm-fraction sweep must pass its shape checks
# (fewer collectives and a lower comm fraction at every rank count).
# Needs awk.
set -eu

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

go run ./cmd/datagen -workload paper -n 4000 -seed 7 -o "$DIR/data.txt"

run_ll() {
	go run ./cmd/pautoclass -data "$DIR/data.txt" -procs 4 -start-j 4 \
		-tries 1 -max-cycles 120 -sync-every "$1" \
		| tee /dev/stderr \
		| awk -F'log likelihood=' '/log likelihood=/{split($2,a," "); print a[1]}'
}

SYNC_LL="$(run_ll 1)"
ASYNC_LL="$(run_ll 4)"
[ -n "$SYNC_LL" ] || { echo "async-smoke: no log likelihood in synchronous output" >&2; exit 1; }
[ -n "$ASYNC_LL" ] || { echo "async-smoke: no log likelihood in L=4 output" >&2; exit 1; }

awk -v a="$SYNC_LL" -v b="$ASYNC_LL" 'BEGIN {
	d = a - b; if (d < 0) d = -d
	m = (a < 0 ? -a : a); if ((b < 0 ? -b : b) > m) m = (b < 0 ? -b : b)
	if (m < 1) m = 1
	rel = d / m
	printf "async-smoke: loglik L=1 %s vs L=4 %s (rel diff %.4f)\n", a, b, rel
	exit (rel <= 0.02 ? 0 : 1)
}' || { echo "async-smoke: L=4 quality diverged from synchronous run" >&2; exit 1; }

# Comm-fraction curve: the quick sweep's shape checks enforce that raising
# L lowers the collective count and comm fraction at every rank count.
go run ./cmd/benchfigs -fig async -quick | tee "$DIR/async.out"
grep -q "shape checks: all passed" "$DIR/async.out" || {
	echo "async-smoke: comm-fraction shape checks failed" >&2
	exit 1
}

echo "async-smoke: OK"
