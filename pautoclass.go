// Package repro is P-AutoClass in Go: a reproduction of "Scalable Parallel
// Clustering for Data Mining on Multicomputers" (Foti, Lipari, Pizzuti,
// Talia; IPPS 2000 Workshops).
//
// It provides Bayesian unsupervised classification (AutoClass) over tabular
// data with real and discrete attributes, a message-passing SPMD
// parallelization of the full classification search (P-AutoClass), and a
// simulated-multicomputer mode that reports elapsed times under the
// paper's Meiko CS-2 machine model.
//
// Quick start — fit, then score new data:
//
//	ds, _ := repro.LoadDataset("data.txt")
//	res, _ := repro.Run(ds)
//	fmt.Println(repro.BuildReport(res.Best(), ds))
//
//	pred, _ := repro.Predict(res.Best(), newData, repro.PredictConfig{})
//	fmt.Println(pred.MAP[0], pred.Membership(0), pred.LogLik)
//
// Run is the single entry point; options select everything else:
//
//	// P-AutoClass on 8 in-process ranks
//	res, _ := repro.Run(ds, repro.WithParallel(repro.ParallelConfig{Procs: 8}))
//	fmt.Println(res.Stats.WallSeconds)
//
//	// full-covariance Gaussians over the real attributes
//	res, _ := repro.Run(ds, repro.WithCorrelated())
//
//	// the two-level search over model forms
//	res, _ := repro.Run(ds, repro.WithModelSearch())
//
//	// resumable: re-running after an interruption continues bitwise
//	res, _ := repro.Run(ds, repro.WithCheckpoint("search.ckpt", 8),
//	    repro.WithParallel(repro.ParallelConfig{Procs: 4}))
//
//	// instrumented: metrics, Chrome trace, phase profile
//	o := repro.NewRunObserver(1)
//	res, _ := repro.Run(ds, repro.WithObserver(o))
//
// The legacy Cluster / ClusterCorrelated / ClusterModels / ClusterParallel
// functions remain as deprecated wrappers over Run. A long-running serving
// front-end (async training jobs + batch prediction over HTTP) ships as
// cmd/pautoclassd.
//
// The heavy lifting lives in the internal packages (see DESIGN.md for the
// system inventory); this package is the stable facade.
package repro

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/autoclass"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/pautoclass"
	"repro/internal/simnet"
)

// Core data types, re-exported.
type (
	// Dataset is a typed table of instances.
	Dataset = dataset.Dataset
	// Attribute describes one dataset column.
	Attribute = dataset.Attribute
	// Classification is a fitted mixture model.
	Classification = autoclass.Classification
	// Report is a human-readable classification summary with AutoClass-
	// style influence values.
	Report = autoclass.Report
	// SearchConfig controls the BIG_LOOP model search.
	SearchConfig = autoclass.SearchConfig
	// SearchResult is the outcome of a search: the best classification
	// plus every try's record.
	SearchResult = autoclass.SearchResult
	// Machine is a simulated multicomputer model.
	Machine = simnet.Machine
	// GaussianMixture specifies a synthetic workload.
	GaussianMixture = datagen.GaussianMixture
)

// Attribute kinds.
const (
	// Real marks a continuous attribute (modeled single_normal_cn).
	Real = dataset.Real
	// Discrete marks a nominal attribute (modeled single_multinomial).
	Discrete = dataset.Discrete
)

// NewDataset creates an empty dataset with the given schema.
func NewDataset(name string, attrs []Attribute) (*Dataset, error) {
	return dataset.New(name, attrs)
}

// LoadDataset reads a dataset file: binary when the path ends in ".bin",
// CSV with schema inference when it ends in ".csv", the native text format
// otherwise.
func LoadDataset(path string) (*Dataset, error) { return dataset.LoadFile(path) }

// SaveDataset writes a dataset file in the format implied by the path.
func SaveDataset(path string, ds *Dataset) error { return dataset.SaveFile(path, ds) }

// Missing is the encoding of an unknown attribute value.
var Missing = dataset.Missing

// Chunked (out-of-core) data plane, re-exported. A chunk file stores the
// dataset column-major in fixed-size row chunks; opened, it serves the
// engine's blocked kernels directly from disk with a bounded resident set,
// so training and prediction scale past RAM. Search trajectories are
// bitwise identical to the materialized rows for every backing and chunk
// size. See WithChunkedData / WithMemoryBudget for the Run integration.
type (
	// ChunkOptions configures OpenChunkedDataset (mode, memory budget).
	ChunkOptions = dataset.ChunkOptions
	// ChunkMode selects the chunk-file backing.
	ChunkMode = dataset.ChunkMode
	// ChunkWriter streams rows into a chunk file one chunk at a time —
	// the ingestion sink for datasets that never fit in memory (see
	// CSVOptions.Sink).
	ChunkWriter = dataset.ChunkWriter
	// CSVOptions controls ReadCSVInto: explicit schema, row-count hint,
	// and the optional streaming chunk sink.
	CSVOptions = dataset.CSVOptions
)

// Chunk-file backings.
const (
	// ChunkAuto memory-maps when the platform supports it, else caches.
	ChunkAuto = dataset.ChunkAuto
	// ChunkInMemory eagerly loads every chunk into RAM.
	ChunkInMemory = dataset.ChunkInMemory
	// ChunkMmap memory-maps the file (error where unsupported).
	ChunkMmap = dataset.ChunkMmap
	// ChunkCached keeps a bounded number of chunks resident.
	ChunkCached = dataset.ChunkCached
)

// DefaultChunkRows is the chunk size used when 0 is passed for one.
const DefaultChunkRows = dataset.DefaultChunkRows

// WriteChunkedDataset writes ds to path in the chunk-file format.
// chunkRows must be a positive multiple of 256 (0 = DefaultChunkRows).
func WriteChunkedDataset(path string, ds *Dataset, chunkRows int) error {
	if chunkRows == 0 {
		chunkRows = DefaultChunkRows
	}
	return dataset.WriteChunked(path, ds, chunkRows)
}

// OpenChunkedDataset opens a chunk file as a chunk-backed dataset: no
// row-major storage, kernels walk the chunk plane, and opts decides how
// many bytes stay resident. The caller owns Close. Run with WithChunkedData
// does the open/close housekeeping itself.
func OpenChunkedDataset(path string, opts ChunkOptions) (*Dataset, error) {
	return dataset.OpenChunked(path, opts)
}

// NewChunkWriter starts a chunk file on ws for the streaming ingestion
// path; see ChunkWriter.
func NewChunkWriter(ws io.WriteSeeker, name string, attrs []Attribute, chunkRows int) (*ChunkWriter, error) {
	if chunkRows == 0 {
		chunkRows = DefaultChunkRows
	}
	return dataset.NewChunkWriter(ws, name, attrs, chunkRows)
}

// ReadCSVInto is the sized/streaming CSV importer: with an explicit schema
// it parses in a single pass holding one row in memory, pre-sizing row
// storage from the reader's length when knowable; with CSVOptions.Sink the
// rows stream straight into a chunk file and the returned dataset is nil.
// The zero CSVOptions reproduces plain schema-inferring CSV loading.
func ReadCSVInto(r io.Reader, name string, opts CSVOptions) (*Dataset, error) {
	return dataset.ReadCSVWith(r, name, opts)
}

// DefaultSearchConfig returns the paper-equivalent search settings
// (start_j_list = 2,4,8,16,24,50,64, two tries each).
func DefaultSearchConfig() SearchConfig { return autoclass.DefaultSearchConfig() }

// MeikoCS2 returns the paper's experimental platform model.
func MeikoCS2() Machine { return simnet.MeikoCS2() }

// PentiumPC returns the paper's sequential anchor machine model.
func PentiumPC() Machine { return simnet.PentiumPC() }

// Cluster runs the sequential AutoClass search over the dataset with the
// independent-attribute model.
//
// Deprecated: use Run(ds, WithSearchConfig(cfg)).
func Cluster(ds *Dataset, cfg SearchConfig) (*SearchResult, error) {
	r, err := Run(ds, WithSearchConfig(cfg))
	if err != nil {
		return nil, err
	}
	return r.Search, nil
}

// ClusterCorrelated is Cluster with all real attributes modeled jointly by
// a full-covariance Gaussian per class (AutoClass multi_normal_cn).
//
// Deprecated: use Run(ds, WithSearchConfig(cfg), WithCorrelated()).
func ClusterCorrelated(ds *Dataset, cfg SearchConfig) (*SearchResult, error) {
	r, err := Run(ds, WithSearchConfig(cfg), WithCorrelated())
	if err != nil {
		return nil, err
	}
	return r.Search, nil
}

// Strategy selects the parallelization variant.
type Strategy = pautoclass.Strategy

// Parallelization strategies.
const (
	// Full is P-AutoClass (both EM phases parallel).
	Full = pautoclass.Full
	// WtsOnly is the update_wts-only prior-art baseline.
	WtsOnly = pautoclass.WtsOnly
)

// ParallelConfig configures WithParallel.
type ParallelConfig struct {
	// Procs is the number of ranks (goroutines connected by the message-
	// passing substrate). Must be >= 1.
	Procs int
	// Strategy selects Full (default) or WtsOnly.
	Strategy Strategy
	// Machine, when non-nil, runs the whole group under virtual clocks on
	// this machine model and reports the simulated elapsed time.
	Machine *Machine
	// UseTCP routes every message over loopback TCP sockets instead of
	// in-process channels, exercising the distributed deployment path.
	UseTCP bool
	// OpDeadline bounds every transport operation; a stalled rank errors
	// out instead of hanging the group (0 = no deadline).
	OpDeadline time.Duration
	// SendRetries is the maximum attempts per send when the transport
	// reports a transient fault (<= 1 = no retry).
	SendRetries int
}

// ParallelStats reports timing of a parallel run.
type ParallelStats struct {
	// WallSeconds is the real elapsed time.
	WallSeconds float64
	// VirtualSeconds and VirtualCommSeconds are the simulated machine's
	// elapsed and communication time (zero unless a Machine was set).
	VirtualSeconds, VirtualCommSeconds float64
}

// ClusterParallel runs the P-AutoClass search across pc.Procs ranks and
// returns rank 0's result (all ranks produce the identical classification).
//
// Deprecated: use Run(ds, WithSearchConfig(cfg), WithParallel(pc)).
func ClusterParallel(ds *Dataset, cfg SearchConfig, pc ParallelConfig) (*SearchResult, *ParallelStats, error) {
	r, err := Run(ds, WithSearchConfig(cfg), WithParallel(pc))
	if err != nil {
		return nil, nil, err
	}
	return r.Search, &r.Stats, nil
}

// BuildReport renders the classification as an AutoClass-style report.
func BuildReport(cls *Classification, ds *Dataset) *Report {
	return autoclass.BuildReport(cls, ds)
}

// SaveCheckpoint and LoadCheckpoint persist classifications as JSON.
//
// Deprecated: use Checkpoint.SaveFile.
func SaveCheckpoint(path string, cls *Classification) error {
	return (&Checkpoint{Classification: cls}).SaveFile(path)
}

// LoadCheckpoint restores a classification saved by SaveCheckpoint,
// validating it against the dataset's schema.
//
// Deprecated: use Checkpoint.LoadFile.
func LoadCheckpoint(path string, ds *Dataset) (*Classification, error) {
	var ck Checkpoint
	if err := ck.LoadFile(path, ds); err != nil {
		return nil, err
	}
	return ck.Classification, nil
}

// PaperDataset generates n tuples of the paper's synthetic evaluation
// workload (two real attributes, five Gaussian clusters).
func PaperDataset(n int, seed uint64) (*Dataset, error) {
	return datagen.Paper(n, seed)
}

// FormatHMS renders seconds in the paper's h.mm.ss format.
func FormatHMS(seconds float64) string { return simnet.FormatHMS(seconds) }

// PCCluster returns a commodity-PC-cluster machine model (the paper's
// portability target).
func PCCluster() Machine { return simnet.PCCluster() }

// ModelSearchResult is the outcome of the two-level search (model forms ×
// class counts).
type ModelSearchResult = autoclass.ModelSearchResult

// ClusterModels runs AutoClass's full two-level search: for every
// applicable model form (independent attributes; correlated reals when the
// dataset has two or more; log-normal reals when all are positive), the
// complete BIG_LOOP — keeping the best classification across forms.
//
// Deprecated: use Run(ds, WithSearchConfig(cfg), WithModelSearch()).
func ClusterModels(ds *Dataset, cfg SearchConfig) (*ModelSearchResult, error) {
	r, err := Run(ds, WithSearchConfig(cfg), WithModelSearch())
	if err != nil {
		return nil, err
	}
	return r.Models, nil
}

// CaseAssignment is one instance's class-membership record.
type CaseAssignment = autoclass.CaseAssignment

// AssignCases returns every instance's class memberships above the
// threshold (the most probable class is always included).
func AssignCases(cls *Classification, ds *Dataset, threshold float64) []CaseAssignment {
	return autoclass.AssignCases(cls, ds.All(), threshold)
}

// WriteCases renders AutoClass-style case assignments to w.
func WriteCases(w io.Writer, cls *Classification, ds *Dataset, threshold float64) error {
	return autoclass.WriteCases(w, cls, ds.All(), threshold)
}

// ClassSizes returns the hard-assignment population of every class.
func ClassSizes(cls *Classification, ds *Dataset) []int {
	return autoclass.ClassSizes(cls, ds.All())
}

// MeanMaxMembership measures classification sharpness: the mean maximum
// membership probability (≈1 for well-separated classes, ≈1/J for heavily
// overlapped ones — the paper's §2 notion).
func MeanMaxMembership(cls *Classification, ds *Dataset) float64 {
	return autoclass.MeanMaxMembership(cls, ds.All())
}

// Contingency is a label × cluster co-occurrence table with external
// clustering-quality metrics (Purity, AdjustedRandIndex,
// NormalizedMutualInformation).
type Contingency = eval.Contingency

// Evaluate tabulates the classification's hard assignments against known
// labels (len(labels) must equal ds.N()). AutoClass never uses labels; this
// is for validating discovered structure against a planted or expert truth.
func Evaluate(cls *Classification, ds *Dataset, labels []int) (*Contingency, error) {
	if ds == nil || cls == nil {
		return nil, errors.New("repro: nil dataset or classification")
	}
	if len(labels) != ds.N() {
		return nil, fmt.Errorf("repro: %d labels for %d instances", len(labels), ds.N())
	}
	clusters := make([]int, ds.N())
	row := make([]float64, ds.NumAttrs())
	for i := 0; i < ds.N(); i++ {
		clusters[i] = cls.HardAssign(ds.RowTo(row, i))
	}
	return eval.NewContingency(labels, clusters)
}

// PaperMixtureForTest exposes the paper-workload generator spec so tests
// and examples can generate labeled data.
func PaperMixtureForTest() *GaussianMixture { return datagen.PaperMixture() }

// SplitDataset deterministically shuffles and splits the dataset into
// train/test parts for held-out evaluation.
func SplitDataset(ds *Dataset, trainFrac float64, seed uint64) (train, test *Dataset, err error) {
	if ds == nil {
		return nil, nil, errors.New("repro: nil dataset")
	}
	return dataset.SplitShuffled(ds, trainFrac, seed)
}

// HeldoutLogLik returns the total log-likelihood of unseen instances under
// the classification — the held-out validation of model selection.
func HeldoutLogLik(cls *Classification, ds *Dataset) float64 {
	return autoclass.HeldoutLogLik(cls, ds.All())
}
